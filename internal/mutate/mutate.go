// Package mutate defines the NDJSON mutation log: the write-path wire
// format applied through the engine's single-writer apply loop
// (Engine.Apply) and served as POST /v1/mutate. It mirrors
// internal/wire's request/response discipline — one JSON object per
// line, ordinal ids for lines that carry none, malformed lines reported
// as recoverable per-line errors so the stream continues.
//
// A request line is one mutation op:
//
//	{"op":"add_node","node":"alice","attrs":{"job":"doctor"}}
//	{"op":"set_attr","node":"alice","attrs":{"job":"surgeon"}}
//	{"id":7,"op":"add_edge","from":"alice","to":"bob","color":"fn"}
//	{"op":"remove_edge","from":"alice","to":"bob","color":"fn"}
//
// Lines whose first non-blank character is not '{' are parsed as the
// qlang text form instead ("add_edge alice bob fn" — see
// qlang.ParseMutLine), so mutation scripts can be written by hand;
// '#' comments are allowed.
//
// The response is one ack line per op, then a trailing summary line:
//
//	{"id":0,"op":"add_node","gen":3}
//	{"id":1,"op":"add_edge","error":"mutate: unknown node \"zz\""}
//	{"kind":"summary","gen":3,"applied":1,"failed":1,"nodes":9,"edges":12}
//
// Failed ops are skipped, not fatal: the rest of the batch still
// commits (per-op atomicity inside an atomically-published generation).
// The schema is pinned by golden files (testdata/*.golden).
package mutate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"regraph/internal/qlang"
)

// MaxLineBytes bounds one mutation line, mirroring wire.MaxLineBytes: a
// line-oriented reader cannot resynchronize past an oversized record.
const MaxLineBytes = 1 << 20

// The mutation verbs.
const (
	VerbAddNode    = "add_node"
	VerbSetAttr    = "set_attr"
	VerbAddEdge    = "add_edge"
	VerbRemoveEdge = "remove_edge"
)

// Op is one mutation line. Node/Attrs are the add_node and set_attr
// fields; From/To/Color the edge-verb fields. Nodes are addressed by
// name, never by ID — IDs are an engine-internal, generation-relative
// notion.
type Op struct {
	// ID tags the op's ack. Optional: the decoder assigns the line's
	// 0-based ordinal when absent.
	ID *uint64 `json:"id,omitempty"`

	// Verb is one of the Verb* constants.
	Verb string `json:"op"`

	// Node names the target of add_node (must be new) or set_attr (must
	// exist).
	Node string `json:"node,omitempty"`

	// Attrs are add_node's initial attributes or set_attr's assignments
	// (set_attr overwrites listed keys and leaves others alone).
	Attrs map[string]string `json:"attrs,omitempty"`

	// From/To/Color describe the edge for add_edge/remove_edge. Nodes
	// must exist; remove_edge removes one edge matching all three.
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Color string `json:"color,omitempty"`
}

// fieldOK reports whether s can stand as one whitespace-delimited field
// of the text form: non-empty, no spaces, no control characters. Names,
// colors and attribute keys must all satisfy it so JSON and text lines
// describe the same universe of mutations.
func fieldOK(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] == 0x7f {
			return false
		}
	}
	return true
}

func checkAttrs(verb string, attrs map[string]string) error {
	for k := range attrs {
		if !fieldOK(k) || strings.ContainsRune(k, '=') {
			return fmt.Errorf("mutate: %s: bad attribute key %q", verb, k)
		}
	}
	return nil
}

// Validate checks the op's shape (the field constraints a line must
// satisfy regardless of graph state; name resolution happens at apply
// time and yields per-op ack errors instead). Node names, colors and
// attribute keys must be single whitespace-free tokens — the text form
// cannot express anything else, and the two forms stay interchangeable.
func (o *Op) Validate() error {
	switch o.Verb {
	case VerbAddNode:
		if !fieldOK(o.Node) {
			return fmt.Errorf("mutate: add_node needs a whitespace-free node name")
		}
		if o.From != "" || o.To != "" || o.Color != "" {
			return fmt.Errorf("mutate: add_node takes node and attrs only")
		}
		return checkAttrs(o.Verb, o.Attrs)
	case VerbSetAttr:
		if !fieldOK(o.Node) {
			return fmt.Errorf("mutate: set_attr needs a whitespace-free node name")
		}
		if len(o.Attrs) == 0 {
			return fmt.Errorf("mutate: set_attr needs at least one attribute")
		}
		if o.From != "" || o.To != "" || o.Color != "" {
			return fmt.Errorf("mutate: set_attr takes node and attrs only")
		}
		return checkAttrs(o.Verb, o.Attrs)
	case VerbAddEdge, VerbRemoveEdge:
		if !fieldOK(o.From) || !fieldOK(o.To) || !fieldOK(o.Color) {
			return fmt.Errorf("mutate: %s needs whitespace-free from, to and color", o.Verb)
		}
		if o.Color == "_" {
			return fmt.Errorf("mutate: the wildcard %q is not a concrete edge color", "_")
		}
		if o.Node != "" || len(o.Attrs) != 0 {
			return fmt.Errorf("mutate: %s takes from, to and color only", o.Verb)
		}
	case "":
		return fmt.Errorf("mutate: missing op verb")
	default:
		return fmt.Errorf("mutate: unknown op %q", o.Verb)
	}
	return nil
}

// Ack is one response line: the fate of one op. Gen is the generation
// the op's batch committed as (0 — the pre-write generation — never
// acks a successful op). Failed ops carry Err and no Gen.
type Ack struct {
	ID   uint64 `json:"id"`
	Verb string `json:"op,omitempty"`
	Gen  uint64 `json:"gen,omitempty"`
	Err  string `json:"error,omitempty"`

	// ErrKind classifies Err for programmatic handling, mirroring
	// wire.Response.ErrKind: "read_only" marks an op refused by a tier
	// that cannot write (a replica router with no writer upstream).
	// Empty for success and for ordinary per-op failures.
	ErrKind string `json:"error_kind,omitempty"`
}

// Summary is the trailing response line of a mutation stream: totals
// across every batch the request committed, and the graph size after
// the last one. Kind is always "summary", which is how clients tell it
// apart from acks.
type Summary struct {
	Kind    string `json:"kind"`
	Gen     uint64 `json:"gen"`
	Applied int    `json:"applied"`
	Failed  int    `json:"failed"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	// Err reports a stream-level failure (unreadable body, engine not
	// mutable); per-op failures are ack errors, not this.
	Err string `json:"error,omitempty"`

	// ErrKind classifies Err, mirroring Ack.ErrKind ("read_only" when
	// the whole stream was refused by a non-writing tier).
	ErrKind string `json:"error_kind,omitempty"`
}

// SummaryKind is the Kind value of a Summary line.
const SummaryKind = "summary"

// LineError reports one malformed mutation line. It is recoverable: the
// decoder has consumed the line and Next may be called again.
type LineError struct {
	Line int // physical line number, 1-based
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("mutate: line %d: %v", e.Line, e.Err) }
func (e *LineError) Unwrap() error { return e.Err }

// Decoder reads mutation lines, JSON or qlang text form. Blank lines
// and '#' comments are skipped; a malformed line yields a *LineError
// (recoverable — keep calling Next) together with an Op carrying the
// line's assigned ordinal so the caller can ack the failure; any other
// error is a stream-level failure.
type Decoder struct {
	sc     *bufio.Scanner
	line   int
	ord    uint64
	nbytes int64
}

// NewDecoder wraps r in a mutation decoder accepting lines up to
// MaxLineBytes.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	return &Decoder{sc: sc}
}

// Next returns the next op. At end of input it returns io.EOF.
func (d *Decoder) Next() (Op, error) {
	for d.sc.Scan() {
		d.line++
		d.nbytes += int64(len(d.sc.Bytes())) + 1
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id := d.ord
		d.ord++
		var op Op
		if text[0] == '{' {
			if err := json.Unmarshal([]byte(text), &op); err != nil {
				return Op{ID: &id}, &LineError{Line: d.line, Err: err}
			}
		} else {
			m, err := qlang.ParseMutLine(text)
			if err != nil {
				return Op{ID: &id}, &LineError{Line: d.line, Err: err}
			}
			op = Op{Verb: m.Verb, Node: m.Node, From: m.From, To: m.To, Color: m.Color, Attrs: m.Attrs}
		}
		if op.ID == nil {
			op.ID = &id
		}
		if err := op.Validate(); err != nil {
			return op, &LineError{Line: d.line, Err: err}
		}
		return op, nil
	}
	if err := d.sc.Err(); err != nil {
		return Op{}, fmt.Errorf("mutate: read: %w", err)
	}
	return Op{}, io.EOF
}

// Consumed reports the input bytes the decoder has read so far
// (including skipped blanks and comments) — the wire-size accounting a
// byte-bounded admission window needs.
func (d *Decoder) Consumed() int64 { return d.nbytes }

// flusher / errFlusher mirror wire.Encoder's: each ack reaches a
// streaming client the moment it is written.
type flusher interface{ Flush() }

type errFlusher interface{ Flush() error }

// Encoder writes ack and summary lines; safe for concurrent use and
// flushing per line when the writer supports it.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
	f   flusher
	ef  errFlusher
}

// NewEncoder wraps w in an ack encoder.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{enc: json.NewEncoder(w)}
	switch f := w.(type) {
	case flusher:
		e.f = f
	case errFlusher:
		e.ef = f
	}
	return e
}

// Encode writes one line (an Ack or a Summary).
func (e *Encoder) Encode(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.enc.Encode(v); err != nil {
		return err
	}
	if e.f != nil {
		e.f.Flush()
	} else if e.ef != nil {
		return e.ef.Flush()
	}
	return nil
}

// Text renders an op in the qlang text form (round-tripping through
// ParseMutLine), for script generation and error messages.
func (o *Op) Text() string {
	return qlang.FormatMut(qlang.Mut{
		Verb: o.Verb, Node: o.Node, From: o.From, To: o.To, Color: o.Color, Attrs: o.Attrs,
	})
}
