// Package bench regenerates every table and figure of the paper's
// experimental study (Section 6). Each Fig* function is a driver that runs
// one experiment's parameter sweep and returns a Table with the same
// series the paper plots; cmd/experiments prints them, and the root-level
// bench_test.go wraps them as testing.B benchmarks.
//
// Absolute numbers depend on the host (the paper used a 2.3 GHz Athlon
// 64×2); what must reproduce is the *shape*: which algorithm wins, by
// roughly what factor, and where crossovers fall. EXPERIMENTS.md records
// paper-vs-measured shape for every driver here.
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
)

// Config scales the experiments. The paper's full sizes take hours on one
// core; the defaults reproduce every curve's shape in minutes. Raise
// YouTubeScale/SyntheticScale to 1.0 for paper-sized runs.
type Config struct {
	Seed            int64
	YouTubeScale    float64 // fraction of the paper's 8,350-node crawl
	SyntheticScale  float64 // fraction of the paper's synthetic sizes
	QueriesPerPoint int     // the paper averages 20 queries per point
	CacheSize       int     // LRU distance-cache entries
}

// DefaultConfig is used by cmd/experiments and bench_test.go; the
// REGRAPH_BENCH_SCALE and REGRAPH_BENCH_QUERIES environment variables
// override the scale factors and per-point query count.
func DefaultConfig() Config {
	cfg := Config{
		Seed:            1,
		YouTubeScale:    0.25,
		SyntheticScale:  0.25,
		QueriesPerPoint: 3,
		CacheSize:       1 << 16,
	}
	if v := os.Getenv("REGRAPH_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			cfg.YouTubeScale = f
			cfg.SyntheticScale = f
		}
	}
	if v := os.Getenv("REGRAPH_BENCH_QUERIES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.QueriesPerPoint = n
		}
	}
	return cfg
}

// Env lazily builds and caches the datasets and their distance matrices so
// several experiments can share them.
type Env struct {
	Cfg Config

	yt       *graph.Graph
	ytMx     *dist.Matrix
	ytMxTime time.Duration

	terror       *graph.Graph
	terrorMx     *dist.Matrix
	terrorMxTime time.Duration

	synth     map[string]*graph.Graph
	synthMx   map[string]*dist.Matrix
	synthTime map[string]time.Duration
}

// NewEnv creates an experiment environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:       cfg,
		synth:     map[string]*graph.Graph{},
		synthMx:   map[string]*dist.Matrix{},
		synthTime: map[string]time.Duration{},
	}
}

// YouTube returns the shared YouTube-like graph, its distance matrix and
// the matrix build time (the paper's M-Index series).
func (e *Env) YouTube() (*graph.Graph, *dist.Matrix, time.Duration) {
	if e.yt == nil {
		e.yt = gen.YouTube(e.Cfg.Seed, e.Cfg.YouTubeScale)
		t0 := time.Now()
		e.ytMx = dist.NewMatrix(e.yt)
		e.ytMxTime = time.Since(t0)
	}
	return e.yt, e.ytMx, e.ytMxTime
}

// Terror returns the shared terrorist-organization graph and matrix.
func (e *Env) Terror() (*graph.Graph, *dist.Matrix, time.Duration) {
	if e.terror == nil {
		e.terror = gen.Terror(e.Cfg.Seed)
		t0 := time.Now()
		e.terrorMx = dist.NewMatrix(e.terror)
		e.terrorMxTime = time.Since(t0)
	}
	return e.terror, e.terrorMx, e.terrorMxTime
}

// Synthetic returns a cached synthetic graph with the given shape (already
// scaled by the caller) and its matrix.
func (e *Env) Synthetic(nodes, edges int) (*graph.Graph, *dist.Matrix, time.Duration) {
	key := fmt.Sprintf("%d/%d", nodes, edges)
	if _, ok := e.synth[key]; !ok {
		g := gen.Synthetic(e.Cfg.Seed, nodes, edges, 3, gen.DefaultColors)
		t0 := time.Now()
		e.synth[key] = g
		e.synthMx[key] = dist.NewMatrix(g)
		e.synthTime[key] = time.Since(t0)
	}
	return e.synth[key], e.synthMx[key], e.synthTime[key]
}

// ScaleN applies the synthetic scale factor to a paper-sized count,
// keeping at least a small floor so sweeps stay monotone.
func (e *Env) ScaleN(n int) int {
	v := int(float64(n) * e.Cfg.SyntheticScale)
	if v < 16 {
		v = 16
	}
	return v
}

// Rand returns a fresh deterministic source offset from the config seed.
func (e *Env) Rand(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Cfg.Seed*1_000_003 + offset))
}

// ---- result tables ----------------------------------------------------------

// Row is one x-axis point of a figure.
type Row struct {
	Label  string
	Values map[string]float64
}

// Table is one regenerated figure: the x axis, the series the paper plots
// and one row per sweep point.
type Table struct {
	ID     string // e.g. "Fig. 9(b)"
	Title  string
	XLabel string
	Unit   string // "s", "F-measure", "count", ...
	Series []string
	Rows   []Row
	Notes  []string

	// Metrics are scalar side measurements outside the row/series grid
	// (e.g. retained bytes), keyed by a space-free unit label so
	// benchmark wrappers can forward them through b.ReportMetric into
	// the BENCH_*.json artifacts.
	Metrics map[string]float64
}

// Add appends a row.
func (t *Table) Add(label string, values map[string]float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Metric records a scalar side measurement (see Metrics).
func (t *Table) Metric(unit string, v float64) {
	if t.Metrics == nil {
		t.Metrics = map[string]float64{}
	}
	t.Metrics[unit] = v
}

// Format renders the table as fixed-width text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " [%s]", t.Unit)
	}
	b.WriteByte('\n')
	width := 14
	fmt.Fprintf(&b, "%-*s", width, t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%*s", width, s)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for _, s := range t.Series {
			v, ok := r.Values[s]
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			fmt.Fprintf(&b, "%*s", width, formatValue(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	if len(t.Metrics) > 0 {
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  metric: %s = %s\n", k, formatValue(t.Metrics[k]))
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return strconv.FormatInt(int64(v), 10)
	case v >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case v >= 0.01:
		return strconv.FormatFloat(v, 'f', 4, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// timeIt runs fn and returns elapsed seconds.
func timeIt(fn func()) float64 {
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}

// All returns every experiment driver keyed by a short name, in a stable
// order (used by cmd/experiments).
func All() []NamedDriver {
	return []NamedDriver{
		{"fig9a", Fig9a},
		{"fig9b", Fig9b},
		{"fig9c", Fig9c},
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
		{"fig11a", Fig11a},
		{"fig11b", Fig11b},
		{"fig11c", Fig11c},
		{"fig11d", Fig11d},
		{"fig12a", Fig12a},
		{"fig12b", Fig12b},
		{"fig12c", Fig12c},
		{"fig12d", Fig12d},
		{"fig12e", Fig12e},
		{"fig12f", Fig12f},
		{"engine-batch", EngineBatch},
		{"engine-memo", EngineMemo},
		{"engine-session", EngineSession},
		{"server-throughput", ServerThroughput},
		{"load", ServerLoad},
		{"mutate", Mutate},
		{"wal", WAL},
		{"cluster", Cluster},
		{"twohop", TwoHop},
		{"ablation-containment", AblationContainment},
		{"ablation-filter", AblationFilter},
		{"ablation-incremental", AblationIncremental},
		{"ablation-topo", AblationTopoOrder},
		{"ablation-cache", AblationCache},
	}
}

// NamedDriver pairs an experiment name with its driver.
type NamedDriver struct {
	Name string
	Run  func(*Env) *Table
}

// Names lists driver names in order.
func Names() []string {
	ds := All()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	sort.Strings(out)
	return out
}
