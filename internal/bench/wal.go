package bench

import (
	"fmt"
	"os"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/mutate"
	"regraph/internal/wal"
)

// WAL measures what durability costs the write path (ISSUE 10): the
// same deterministic mutation stream committed through engines whose
// write-ahead log runs each fsync policy, against the no-WAL engine
// from the Mutate driver as the baseline. The spread is the point:
// FsyncNone pays only the serialization and buffered write (small),
// FsyncInterval adds a background fsync off the commit path (still
// small), FsyncAlways puts an fsync(2) inside every commit and its
// commit rate is bounded by the disk's sync latency, not the CPU. The
// per-policy commit QPS lands in BENCH_wal.json next to the Mutate
// driver's commit-qps-gen so the trajectory records durable vs
// in-memory write throughput side by side.
func WAL(e *Env) *Table {
	t := &Table{
		ID:     "WAL",
		Title:  "write-ahead log: commit throughput per fsync policy vs no-WAL baseline",
		XLabel: "policy",
		Series: []string{"commit-qps", "slowdown-x"},
	}

	n := e.ScaleN(2000)
	_, batches := mixedWorkload(e, n)

	base := walArm(e, n, batches, "")
	t.Metric("commit-qps-nowal", base)
	t.Add("nowal", map[string]float64{"commit-qps": base, "slowdown-x": 1})
	for _, policy := range []string{wal.FsyncNone, wal.FsyncInterval, wal.FsyncAlways} {
		qps := walArm(e, n, batches, policy)
		t.Metric("commit-qps-"+policy, qps)
		t.Add(policy, map[string]float64{"commit-qps": qps, "slowdown-x": base / qps})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("wal: %d-node graph, %d-op batches, cache backend, fresh log per arm (tmpdir)", n, len(batches[0])))
	return t
}

// walArm replays the op stream on a fresh engine — logging under the
// given fsync policy, or without a WAL when policy is empty — and
// returns commits per second. Same minimum-wall-clock pass structure as
// runMixed, so the arms stay comparable with each other and with the
// Mutate driver's commit rates.
func walArm(e *Env, n int, batches [][]mutate.Op, policy string) float64 {
	g := gen.Synthetic(e.Cfg.Seed, n, 4*n, 3, gen.DefaultColors)
	opts := engine.Options{Workers: 2, BackendKind: "cache"}
	var w *wal.WAL
	if policy != "" {
		dir, err := os.MkdirTemp("", "regraph-bench-wal-*")
		if err != nil {
			panic(fmt.Sprintf("bench: wal tmpdir: %v", err))
		}
		defer os.RemoveAll(dir)
		if w, err = wal.Open(wal.Options{Dir: dir, Fsync: policy}); err != nil {
			panic(fmt.Sprintf("bench: wal open: %v", err))
		}
		defer w.Close()
		opts.WAL = w
	}
	en := engine.MustNew(g, opts)

	const minDur = 300 * time.Millisecond
	commits := 0
	t0 := time.Now()
	for pass := 0; pass == 0 || time.Since(t0) < minDur; pass++ {
		for _, ops := range batches {
			if _, err := en.Apply(ops); err != nil {
				panic(fmt.Sprintf("bench: wal apply: %v", err))
			}
			commits++
		}
	}
	return float64(commits) / time.Since(t0).Seconds()
}
