package bench

import (
	"fmt"
	"math/rand"

	"regraph/internal/candidx"
	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/reach"
)

// TwoHop compares the three distance backends on the paper's single-atom
// RQ workload in two regimes. At the configured YouTube scale the matrix
// fits in memory and sets the speed ceiling the 2-hop labels are measured
// against. The second regime derives, from the very byte budget the
// first regime's matrix occupies, the smallest YouTube-shaped graph whose
// matrix would NOT fit that budget (gen.YouTubeUnbuildable) — there no
// matrix exists by construction and the contest is 2-hop labels vs a
// cold LRU cache, which is the scenario the backend exists for.
//
// Side metrics (forwarded into BENCH_twohop.json by BenchmarkTwoHop):
// label build seconds and bytes/node on the unbuildable graph, and the
// cold-cache-over-twohop query-time factor. Every backend's total pair
// count is cross-checked; a mismatch is reported in the table notes.
func TwoHop(e *Env) *Table {
	t := &Table{
		ID:     "2-hop",
		Title:  "distance backends: 2-hop labels vs cold cache (matrix as metric where buildable)",
		XLabel: "regime",
		Unit:   "s per RQ workload",
		// The matrix cannot appear as a series: the second regime exists
		// precisely because no matrix can be built there. Its fits-regime
		// time is the "matrix-fits-s" metric instead.
		Series: []string{"TwoHop", "ColdCache"},
	}

	// Regime 1: configured scale, matrix buildable. Candidate
	// enumeration goes through the inverted index (as the engine's does)
	// so the measurement isolates the distance lookups, not the shared
	// predicate scan.
	g, mx, _ := e.YouTube()
	cs := candidx.NewMemo(g)
	qs := twoHopWorkload(g, e.Rand(71), 20*e.Cfg.QueriesPerPoint)
	var mxPairs int
	tMx := timeIt(func() { mxPairs = runRQWorkload(g, mx, cs, qs) })
	var th *dist.TwoHop
	build1 := timeIt(func() { th = dist.NewTwoHop(g) })
	var thPairs int
	tTh := timeIt(func() { thPairs = runRQWorkload(g, th, cs, qs) })
	var caPairs int
	var tCa float64
	{
		ca := dist.NewCache(g, e.Cfg.CacheSize) // cold: built, never queried
		tCa = timeIt(func() { caPairs = runRQWorkload(g, ca, cs, qs) })
	}
	t.Add("fits", map[string]float64{"TwoHop": tTh, "ColdCache": tCa})
	if mxPairs != thPairs || mxPairs != caPairs {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"EQUIVALENCE FAILED at scale %.2f: matrix %d, twohop %d, cache %d pairs",
			e.Cfg.YouTubeScale, mxPairs, thPairs, caPairs))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"fits: %d nodes, matrix %d B, labels %d B built in %.3fs, %d pairs",
		g.NumNodes(), mx.Size(), th.Size(), build1, mxPairs))

	// Regime 2: the matrix of regime 1 defines the byte budget; the graph
	// is grown until that budget cannot hold its matrix.
	budget := dist.PredictMatrixBytes(g)
	ug, scale := gen.YouTubeUnbuildable(e.Cfg.Seed, budget)
	ucs := candidx.NewMemo(ug)
	uqs := twoHopWorkload(ug, e.Rand(73), 20*e.Cfg.QueriesPerPoint)
	var uth *dist.TwoHop
	build2 := timeIt(func() { uth = dist.NewTwoHop(ug) })
	var uthPairs int
	uTh := timeIt(func() { uthPairs = runRQWorkload(ug, uth, ucs, uqs) })
	var ucaPairs int
	var uCa float64
	{
		ca := dist.NewCache(ug, e.Cfg.CacheSize)
		uCa = timeIt(func() { ucaPairs = runRQWorkload(ug, ca, ucs, uqs) })
	}
	t.Add("unbuildable", map[string]float64{"TwoHop": uTh, "ColdCache": uCa})
	if uthPairs != ucaPairs {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"EQUIVALENCE FAILED on unbuildable graph: twohop %d, cache %d pairs",
			uthPairs, ucaPairs))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"unbuildable: scale %.3f, %d nodes, matrix would need %d B (> budget %d), labels %d B, %d pairs",
		scale, ug.NumNodes(), dist.PredictMatrixBytes(ug), budget, uth.Size(), uthPairs))

	t.Metric("matrix-fits-s", tMx)
	t.Metric("twohop-build-s", build2)
	t.Metric("twohop-bytes-per-node", float64(uth.Size())/float64(ug.NumNodes()))
	if uTh > 0 {
		t.Metric("cold-cache-over-twohop-x", uCa/uTh)
	}
	return t
}

// twoHopWorkload generates n single-atom RQs — the workload where every
// candidate pair resolves to one backend distance lookup, i.e. where the
// backends actually differ (multi-atom RQs run chained closures whatever
// the backend).
func twoHopWorkload(g *graph.Graph, r *rand.Rand, n int) []reach.Query {
	qs := make([]reach.Query, n)
	for i := range qs {
		qs[i] = gen.RQ(g, 2, 5, 1, r)
	}
	return qs
}

// runRQWorkload evaluates the queries on one backend with a private
// scratch arena and returns the total pair count (the equivalence
// cross-check between backends).
func runRQWorkload(g *graph.Graph, be dist.Backend, cs reach.CandidateSource, qs []reach.Query) int {
	s := dist.GetScratch()
	defer dist.PutScratch(s)
	pairs := 0
	for _, q := range qs {
		pairs += len(q.EvalBackendScratchWith(g, be, s, cs))
	}
	return pairs
}
