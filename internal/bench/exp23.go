package bench

import (
	"fmt"

	"regraph/internal/contain"
	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/pattern"
)

// redundantQuery builds the Exp-2 workload: a meaningful base query
// inflated with duplicated nodes and edges up to the target size. This
// mirrors the paper's observation that larger generated queries carry more
// redundancy, which is what minimization removes.
func (e *Env) redundantQuery(vp, ep int, seedOffset int64) *pattern.Query {
	g, _, _ := e.YouTube()
	r := e.Rand(seedOffset)
	baseNodes := vp * 2 / 3
	if baseNodes < 2 {
		baseNodes = 2
	}
	baseEdges := ep * 2 / 3
	if baseEdges < baseNodes-1 {
		baseEdges = baseNodes - 1
	}
	q := gen.Query(g, gen.Spec{
		Nodes: baseNodes, Edges: baseEdges, Preds: 3, Bound: 5, Colors: 2 + r.Intn(3),
	}, r)
	// Duplicate random nodes (with their outgoing edges) until |Vp| is
	// reached; the duplicates are simulation equivalent by construction.
	for q.NumNodes() < vp {
		src := r.Intn(q.NumNodes())
		n := q.Node(src)
		dup := q.AddNode(fmt.Sprintf("%s'dup%d", n.Name, q.NumNodes()), n.Pred)
		for _, ei := range q.Out(src) {
			edge := q.Edge(ei)
			to := edge.To
			if to == src {
				to = dup
			}
			q.AddEdge(dup, to, edge.Expr)
			if q.NumEdges() >= ep {
				break
			}
		}
	}
	// Duplicate random edges until |Ep| is reached.
	for q.NumEdges() < ep {
		edge := q.Edge(r.Intn(q.NumEdges()))
		q.AddEdge(edge.From, edge.To, edge.Expr)
	}
	return q
}

// Fig10a measures PQ evaluation time with and without minimization
// (Exp-2). The paper's shape: minimized queries evaluate roughly twice as
// fast at the larger sizes, and minimization itself is instantaneous.
func Fig10a(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 10(a)",
		Title:  "effectiveness of PQ minimization (YouTube)",
		XLabel: "(|Vp|,|Ep|)",
		Unit:   "s",
		Series: []string{"Normal", "Minimized", "MinSize"},
	}
	g, mx, _ := e.YouTube()
	sweep := []struct{ vp, ep int }{{4, 6}, {6, 8}, {8, 12}, {10, 15}, {12, 18}}
	for i, pt := range sweep {
		var normal, minimized, minSize float64
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := e.redundantQuery(pt.vp, pt.ep, int64(i*100+k))
			m := contain.Minimize(q)
			normal += timeIt(func() { pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}) })
			minimized += timeIt(func() { pattern.JoinMatch(g, m, pattern.Options{Matrix: mx}) })
			minSize += float64(m.Size())
		}
		n := float64(e.Cfg.QueriesPerPoint)
		t.Add(fmt.Sprintf("(%d,%d)", pt.vp, pt.ep), map[string]float64{
			"Normal": normal / n, "Minimized": minimized / n, "MinSize": minSize / n,
		})
	}
	t.Notes = append(t.Notes,
		"MinSize = average |Vp|+|Ep| after minPQs (input size is the row label)")
	return t
}

// Fig10b compares the three RQ evaluation methods (Exp-3): the distance
// matrix (DM), plain forward BFS, and bi-directional BFS with the LRU
// cache. Sweeps the number of distinct colors c in the expression
// c1{5} ... cc{5}. The paper's shape: DM is fastest; Bi-BFS beats BFS and
// scales better with c.
func Fig10b(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 10(b)",
		Title:  "RQ evaluation methods (YouTube)",
		XLabel: "#colors",
		Unit:   "s",
		Series: []string{"DM", "BFS", "Bi-BFS"},
	}
	g, mx, _ := e.YouTube()
	ca := dist.NewCache(g, e.Cfg.CacheSize)
	for colors := 1; colors <= 4; colors++ {
		r := e.Rand(int64(3000 + colors))
		var dm, bfs, bibfs float64
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.RQ(g, 3, 5, colors, r)
			dm += timeIt(func() { q.EvalMatrix(g, mx) })
			bfs += timeIt(func() { q.EvalBFS(g) })
			bibfs += timeIt(func() { q.EvalBiBFS(g, ca) })
		}
		n := float64(e.Cfg.QueriesPerPoint)
		t.Add(fmt.Sprint(colors), map[string]float64{
			"DM": dm / n, "BFS": bfs / n, "Bi-BFS": bibfs / n,
		})
	}
	return t
}
