package bench

import (
	"strings"
	"testing"
)

// tinyEnv keeps smoke tests fast: minute graph scales, one query per
// point.
func tinyEnv() *Env {
	return NewEnv(Config{
		Seed:            1,
		YouTubeScale:    0.03,
		SyntheticScale:  0.03,
		QueriesPerPoint: 1,
		CacheSize:       1024,
	})
}

// TestAllDriversRun smoke-tests every experiment driver end to end: each
// must produce a table with its declared series populated in every row.
func TestAllDriversRun(t *testing.T) {
	env := tinyEnv()
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			tab := d.Run(env)
			if tab == nil || len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", d.Name)
			}
			if tab.ID == "" || tab.XLabel == "" {
				t.Errorf("%s missing ID or XLabel", d.Name)
			}
			for _, row := range tab.Rows {
				for _, s := range tab.Series {
					if _, ok := row.Values[s]; !ok {
						t.Errorf("%s row %q missing series %q", d.Name, row.Label, s)
					}
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.ID) {
				t.Errorf("Format() does not include the table ID")
			}
		})
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID: "Fig. X", Title: "demo", XLabel: "x", Unit: "s",
		Series: []string{"A", "B"},
	}
	tab.Add("1", map[string]float64{"A": 0.5})
	out := tab.Format()
	if !strings.Contains(out, "Fig. X — demo [s]") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing value should render as '-': %q", out)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("Names() not sorted at %d: %q < %q", i, names[i], names[i-1])
		}
	}
}

func TestDefaultConfigEnvOverride(t *testing.T) {
	t.Setenv("REGRAPH_BENCH_SCALE", "0.5")
	t.Setenv("REGRAPH_BENCH_QUERIES", "7")
	cfg := DefaultConfig()
	if cfg.YouTubeScale != 0.5 || cfg.SyntheticScale != 0.5 {
		t.Errorf("scale override not applied: %+v", cfg)
	}
	if cfg.QueriesPerPoint != 7 {
		t.Errorf("queries override not applied: %+v", cfg)
	}
}
