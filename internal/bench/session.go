package bench

import (
	"context"
	"fmt"
	"runtime"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/reach"
)

// EngineSession measures what the streaming session API buys over
// all-at-once RunBatch on the same RQ batch (ISSUE 4): wall time for
// three configurations — RunBatch (materialize everything, hold
// everything), a session whose consumer handles each materialized
// answer and drops it, and a session whose requests stream pairs
// through Emit callbacks (nothing materialized) — plus, in
// Table.Metrics, the answer memory each configuration still holds live
// when the batch is done. RunBatch must retain every pair slice at
// once; the session configurations retain nothing beyond the in-flight
// window, which is the memory story that makes sessions the multi-user
// serving surface.
func EngineSession(e *Env) *Table {
	t := &Table{
		ID:     "Session",
		Title:  "batch RQ: RunBatch vs streaming session (YouTube, matrix)",
		XLabel: "#queries",
		Unit:   "s",
		Series: []string{"RunBatch", "Session", "SessionEmit"},
	}
	g, mx, _ := e.YouTube()
	en := engine.MustNew(g, engine.Options{Matrix: mx})
	for _, base := range []int{128, 512} {
		nq := base * e.Cfg.QueriesPerPoint
		r := e.Rand(int64(9900 + nq))
		qs := make([]reach.Query, nq)
		reqs := make([]engine.Request, nq)
		for i := range qs {
			qs[i] = gen.RQ(g, 3, 5, 1+r.Intn(3), r)
			reqs[i] = engine.Request{RQ: &qs[i]}
		}

		// RunBatch: everything materialized and retained at once.
		before := liveBytes()
		var res []engine.Result
		batch := timeIt(func() { res = en.RunBatch(reqs) })
		retainedBatch := liveBytes() - before
		pairs := 0
		for i := range res {
			pairs += len(res[i].Pairs)
		}
		res = nil

		// Session, materialized per result: the consumer sees each answer
		// once and drops it; resident answers are bounded by the
		// in-flight cap at every moment.
		before = liveBytes()
		sess := timeIt(func() {
			s := en.Open(context.Background(), engine.SessionOptions{})
			go func() {
				for i := range reqs {
					if _, err := s.Submit(context.Background(), reqs[i]); err != nil {
						return
					}
				}
				s.Close()
			}()
			got := 0
			for res := range s.Results() {
				got += len(res.Pairs)
			}
			if got != pairs {
				panic(fmt.Sprintf("session answered %d pairs, RunBatch %d", got, pairs))
			}
		})
		retainedSess := liveBytes() - before

		// Session with Emit streaming: pairs never materialize at all.
		// (The counts slice lives outside the probe window — the metric
		// measures retained answers, not the consumer's own bookkeeping.)
		counts := make([]int, nq)
		before = liveBytes()
		emit := timeIt(func() {
			s := en.Open(context.Background(), engine.SessionOptions{})
			go func() {
				for i := range qs {
					i := i
					req := engine.Request{RQ: &qs[i], Emit: func(reach.Pair) bool {
						counts[i]++
						return true
					}}
					if _, err := s.Submit(context.Background(), req); err != nil {
						return
					}
				}
				s.Close()
			}()
			for range s.Results() {
			}
		})
		retainedEmit := liveBytes() - before

		t.Add(fmt.Sprint(nq), map[string]float64{
			"RunBatch": batch, "Session": sess, "SessionEmit": emit,
		})
		tag := fmt.Sprintf("B-live-%dq", nq)
		t.Metric("RunBatch-"+tag, clampBytes(retainedBatch))
		t.Metric("Session-"+tag, clampBytes(retainedSess))
		t.Metric("SessionEmit-"+tag, clampBytes(retainedEmit))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d queries, %d answer pairs: live answer bytes after completion — RunBatch %d, Session %d, SessionEmit %d",
			nq, pairs, int64(retainedBatch), int64(retainedSess), int64(retainedEmit)))
	}
	t.Notes = append(t.Notes,
		"sessions submit from one goroutine at the default in-flight bound (2x workers); consumers drop each answer after reading it")
	return t
}

// liveBytes returns the post-GC live heap, the retained-memory probe
// the session experiment differences.
func liveBytes() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// clampBytes floors a retained-bytes delta at zero (GC timing can make
// a no-retention configuration measure slightly negative).
func clampBytes(d int64) float64 {
	if d < 0 {
		return 0
	}
	return float64(d)
}
