package bench

import (
	"fmt"
	"runtime"

	"regraph/internal/dist"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/reach"
)

// EngineBatch measures what the resident engine buys on a batch RQ
// workload (the ROADMAP's multi-user serving scenario, beyond the
// paper's single-query experiments): the same generated queries are
// evaluated by a serial EvalBiBFS loop, by an engine bounded to one
// worker (isolating the scratch-arena reuse from the parallelism), and
// by an engine with one worker per core. Every configuration gets a
// fresh LRU cache so none inherits the others' warm distances.
func EngineBatch(e *Env) *Table {
	maxW := runtime.GOMAXPROCS(0)
	engineN := fmt.Sprintf("Engine-%d", maxW)
	t := &Table{
		ID:     "Engine",
		Title:  "batch RQ throughput: serial loop vs resident engine (YouTube)",
		XLabel: "#queries",
		Unit:   "s",
		Series: []string{"Serial", "Engine-1", engineN},
	}
	g, _, _ := e.YouTube()
	// Batch sizes honor the QueriesPerPoint knob (the CI benchmark-delta
	// step turns it down to stay cheap): at the default of 3 the sweep
	// tops out above a thousand queries per batch.
	for _, base := range []int{32, 128, 512} {
		nq := base * e.Cfg.QueriesPerPoint
		r := e.Rand(int64(9000 + nq))
		qs := make([]reach.Query, nq)
		for i := range qs {
			qs[i] = gen.RQ(g, 3, 5, 1+r.Intn(3), r)
		}
		caSerial := dist.NewCache(g, e.Cfg.CacheSize)
		serial := timeIt(func() {
			for _, q := range qs {
				q.EvalBiBFS(g, caSerial)
			}
		})
		e1 := engine.MustNew(g, engine.Options{Workers: 1, CacheSize: e.Cfg.CacheSize})
		one := timeIt(func() { e1.RunRQs(qs) })
		eN := engine.MustNew(g, engine.Options{Workers: maxW, CacheSize: e.Cfg.CacheSize})
		many := timeIt(func() { eN.RunRQs(qs) })
		t.Add(fmt.Sprint(nq), map[string]float64{
			"Serial": serial, "Engine-1": one, engineN: many,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; each series uses a fresh %d-entry cache", maxW, e.Cfg.CacheSize))
	return t
}

// EngineMemo measures what the candidate inverted index and the
// engine-wide predicate→candidates memo buy on a repeated engine batch
// (ISSUE 3): the same generated RQ batch is evaluated by an engine with
// the index disabled (every query re-scans all nodes per predicate)
// and by a default engine (index lookups, memo hits on repeats). Both
// run the batch twice so the memoized configuration shows its
// steady-state, which is what a resident multi-user engine serves.
func EngineMemo(e *Env) *Table {
	t := &Table{
		ID:     "EngineMemo",
		Title:  "engine batch: candidate scan vs inverted index + memo (YouTube)",
		XLabel: "#queries",
		Unit:   "s",
		Series: []string{"Scan", "IndexMemo"},
	}
	g, _, _ := e.YouTube()
	for _, base := range []int{128, 512} {
		nq := base * e.Cfg.QueriesPerPoint
		r := e.Rand(int64(9500 + nq))
		qs := make([]reach.Query, nq)
		for i := range qs {
			qs[i] = gen.RQ(g, 3, 5, 1+r.Intn(3), r)
		}
		run := func(en *engine.Engine) float64 {
			return timeIt(func() {
				en.RunRQs(qs)
				en.RunRQs(qs)
			})
		}
		scan := run(engine.MustNew(g, engine.Options{
			CacheSize: e.Cfg.CacheSize, DisableCandidateIndex: true,
		}))
		memo := run(engine.MustNew(g, engine.Options{CacheSize: e.Cfg.CacheSize}))
		t.Add(fmt.Sprint(nq), map[string]float64{"Scan": scan, "IndexMemo": memo})
	}
	t.Notes = append(t.Notes,
		"each batch evaluated twice back to back; fresh engine + cache per series")
	return t
}
