package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"regraph/internal/engine"
	"regraph/internal/faultinject"
	"regraph/internal/gen"
	"regraph/internal/loadgen"
	"regraph/internal/router"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// Cluster measures the replica router (ISSUE 8): open-loop throughput
// scaling at 1, 2 and 4 rgserve replicas behind one rgrouter, plus a
// fault-schedule row where one of two replicas is RST-killed for the
// middle third of the run and then recovers. Each replica runs one
// engine worker, so a replica models one single-core process and the
// scaling rows measure the router tier, not intra-engine parallelism
// (on a single-core host every row collapses to the same capacity —
// the ≥1.7x 2-vs-1 scaling needs real cores, as in CI). The offered
// rate is a fixed multiple of the calibrated single-replica capacity,
// well above what any row can serve, so achieved QPS reads out each
// configuration's capacity; the fault rows run below capacity, where
// the interesting number is how little the kill window costs. The
// fault row must complete every request (the router retries the killed
// replica's in-flight ids) — unavailable/errored counts are part of
// the table, and nonzero is a correctness failure, not a slow run.
func Cluster(e *Env) *Table {
	t := &Table{
		ID:     "Cluster",
		Title:  "replica router: open-loop scaling and fault schedule (YouTube, 1 worker/replica)",
		XLabel: "config",
		Series: []string{"offered-qps", "achieved-qps", "p50-ms", "p99-ms", "unavailable", "errors"},
	}
	g, mx, _ := e.YouTube()

	// Count-only RQ templates — the idempotent-read workload the
	// router's retry policy is sound for.
	r := e.Rand(8801)
	const nTmpl = 16
	tmpl := make([]wire.Request, nTmpl)
	for i := range tmpl {
		q := gen.RQ(g, 3, 5, 1+r.Intn(3), r)
		tmpl[i] = wire.Request{
			RQ:    &wire.RQSpec{From: q.From.String(), To: q.To.String(), Expr: q.Expr.String()},
			Count: true,
		}
	}

	// cluster starts n single-worker replicas on faultinject-wrapped
	// loopback listeners and a router in front of them.
	cluster := func(n int) (rt *router.Router, fls []*faultinject.Listener, url string, stop func()) {
		var stops []func()
		urls := make([]string, n)
		for i := 0; i < n; i++ {
			en := engine.MustNew(g, engine.Options{Workers: 1, Matrix: mx})
			srv := server.New(en, server.Options{MaxInFlight: 256})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("bench: cluster replica listener: %v", err))
			}
			fl := faultinject.Wrap(l, nil)
			go srv.Serve(fl)
			fls = append(fls, fl)
			urls[i] = "http://" + l.Addr().String()
			stops = append(stops, func() { srv.Close() })
		}
		rt, err := router.New(router.Options{
			Replicas:      urls,
			ProbeInterval: 50 * time.Millisecond,
			FailThreshold: 2,
			Cooldown:      200 * time.Millisecond,
			RetryBackoff:  10 * time.Millisecond,
			Seed:          e.Cfg.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: cluster router: %v", err))
		}
		rl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("bench: cluster router listener: %v", err))
		}
		go rt.Serve(rl)
		return rt, fls, "http://" + rl.Addr().String() + "/v1/query", func() {
			rt.Close()
			for _, s := range stops {
				s()
			}
		}
	}

	// row drives one open-loop run and records it.
	row := func(label string, url string, rate float64, dur time.Duration, seedOff int64) loadgen.Result {
		res, err := loadgen.Run(loadgen.Config{
			URL:      url,
			Rate:     rate,
			Duration: dur,
			Arrivals: loadgen.Poisson,
			Streams:  4,
			Seed:     e.Cfg.Seed*1_000_003 + seedOff,
			Requests: tmpl,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: cluster row %s: %v", label, err))
		}
		t.Add(label, map[string]float64{
			"offered-qps":  res.OfferedQPS,
			"achieved-qps": res.AchievedQPS,
			"p50-ms":       ms(res.P50),
			"p99-ms":       ms(res.P99),
			"unavailable":  float64(res.Unavailable),
			"errors":       float64(res.Errored),
		})
		t.Metric("qps-"+label, res.AchievedQPS)
		t.Metric("p99-ms-"+label, ms(res.P99))
		return res
	}

	// Calibrate single-replica capacity closed-loop through the router
	// (so router overhead is inside the baseline), then saturate every
	// scaling row with the same offered rate: high enough that even 4
	// replicas are the bottleneck, so achieved QPS == capacity(n).
	rt1, _, url1, stop1 := cluster(1)
	calN := 200 * e.Cfg.QueriesPerPoint
	var wg sync.WaitGroup
	errs := make([]error, 2)
	t0 := time.Now()
	for s := 0; s < len(errs); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lines := make([]wire.Request, calN/2)
			for i := range lines {
				lines[i] = tmpl[(s+i)%len(tmpl)]
				id := uint64(i)
				lines[i].ID = &id
			}
			_, errs[s] = postCountBatch(url1, lines)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: cluster calibration: %v", err))
		}
	}
	capacity := float64(calN) / time.Since(t0).Seconds()
	t.Metric("capacity-1-qps", capacity)

	// Scaling rows: duration sized so the slowest row (n=1 absorbing
	// 5x its capacity) stays CI-friendly.
	satRate := 5 * capacity
	satDur := time.Second
	res1 := row("1", url1, satRate, satDur, 1)
	_ = rt1.Stats()
	stop1()

	rt2, fls2, url2, stop2 := cluster(2)
	res2 := row("2", url2, satRate, satDur, 2)
	t.Metric("scale-2v1", res2.AchievedQPS/res1.AchievedQPS)

	// Fault schedule on the 2-replica cluster, below its capacity: the
	// fault-free baseline first, then the same offered load with one
	// replica RST-killed for the middle third of the arrival window.
	faultRate := 0.55 * res2.AchievedQPS
	faultDur := 2400 * time.Millisecond
	base := row("2-ok", url2, faultRate, faultDur, 3)
	kill := time.AfterFunc(faultDur/3, func() {
		fls2[1].SetRefuse(true)
		fls2[1].AbortAll()
	})
	recover := time.AfterFunc(2*faultDur/3, func() { fls2[1].SetRefuse(false) })
	fault := row("2-fault", url2, faultRate, faultDur, 4)
	kill.Stop()
	recover.Stop()
	st := rt2.Stats()
	t.Metric("fault-retries", float64(st.Retries))
	t.Metric("fault-unavailable", float64(fault.Unavailable))
	t.Metric("fault-qps-ratio", fault.AchievedQPS/base.AchievedQPS)
	stop2()

	rt4, _, url4, stop4 := cluster(4)
	res4 := row("4", url4, satRate, satDur, 5)
	t.Metric("scale-4v1", res4.AchievedQPS/res1.AchievedQPS)
	_ = rt4.Stats()
	stop4()

	t.Notes = append(t.Notes,
		fmt.Sprintf("offered %0.f qps on the scaling rows (5x calibrated single-replica capacity)", satRate),
		"2-fault: replica #2 RST-killed at T/3, recovered at 2T/3; unavailable/errors must be 0")
	return t
}
