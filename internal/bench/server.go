package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/reach"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// ServerThroughput measures what the HTTP/NDJSON wire costs over the
// in-process session API (ISSUE 5): the same count-only RQ batch is run
// once through Engine.Open directly and once through a real rgserve
// loopback server (POST /v1/query, responses streamed back and
// decoded). Count-only requests keep answer serialization out of both
// paths, so the gap is the protocol itself — JSON framing, HTTP, TCP,
// and the per-stream session plumbing. Table.Metrics records the
// overhead factor at the largest point.
func ServerThroughput(e *Env) *Table {
	t := &Table{
		ID:     "Server",
		Title:  "batch RQ: in-process session vs HTTP/NDJSON wire (YouTube, matrix)",
		XLabel: "#queries",
		Unit:   "s",
		Series: []string{"Session", "HTTP"},
	}
	g, mx, _ := e.YouTube()
	en := engine.MustNew(g, engine.Options{Matrix: mx})
	srv := server.New(en, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: server throughput needs a loopback listener: %v", err))
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + l.Addr().String() + "/v1/query"

	var lastSess, lastHTTP float64
	for _, base := range []int{128, 512} {
		nq := base * e.Cfg.QueriesPerPoint
		r := e.Rand(int64(9910 + nq))
		qs := make([]reach.Query, nq)
		lines := make([]wire.Request, nq)
		for i := range qs {
			qs[i] = gen.RQ(g, 3, 5, 1+r.Intn(3), r)
			id := uint64(i)
			lines[i] = wire.Request{
				ID:    &id,
				RQ:    &wire.RQSpec{From: qs[i].From.String(), To: qs[i].To.String(), Expr: qs[i].Expr.String()},
				Count: true,
			}
		}

		// In-process session, Emit-counted (no answers materialized).
		counts := make([]int, nq)
		sess := timeIt(func() {
			s := en.Open(context.Background(), engine.SessionOptions{})
			go func() {
				for i := range qs {
					i := i
					req := engine.Request{RQ: &qs[i], Emit: func(reach.Pair) bool {
						counts[i]++
						return true
					}}
					if _, err := s.Submit(context.Background(), req); err != nil {
						return
					}
				}
				s.Close()
			}()
			for range s.Results() {
			}
		})
		pairs := 0
		for _, c := range counts {
			pairs += c
		}

		// Same batch over the wire against the loopback server.
		wirePairs := 0
		httpT := timeIt(func() {
			var err error
			wirePairs, err = postCountBatch(url, lines)
			if err != nil {
				panic(fmt.Sprintf("bench: wire batch: %v", err))
			}
		})
		if wirePairs != pairs {
			panic(fmt.Sprintf("bench: wire answered %d pairs, session %d", wirePairs, pairs))
		}

		t.Add(fmt.Sprint(nq), map[string]float64{"Session": sess, "HTTP": httpT})
		lastSess, lastHTTP = sess, httpT
	}
	if lastSess > 0 {
		t.Metric("wire-overhead-x", lastHTTP/lastSess)
	}
	return t
}

// postCountBatch streams the request lines to the server and sums the
// counts out of the response stream.
func postCountBatch(url string, lines []wire.Request) (int, error) {
	total, got := 0, 0
	err := wire.PostStream(url, lines, func(_ []byte, r *wire.Response) error {
		if r.Err != "" {
			return fmt.Errorf("response %d: %s", r.ID, r.Err)
		}
		total += r.Count
		got++
		return nil
	})
	if err != nil {
		return 0, err
	}
	if got != len(lines) {
		return 0, fmt.Errorf("got %d responses, want %d", got, len(lines))
	}
	return total, nil
}
