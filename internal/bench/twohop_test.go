package bench

import (
	"os"
	"strconv"
	"testing"
	"time"

	"regraph/internal/dist"
	"regraph/internal/gen"
)

// TestTwoHopBuildWallClock is the CI guard against label-construction
// regressions: building the 2-hop index for the smoke-scale YouTube
// graph must finish within REGRAPH_TWOHOP_BUILD_BUDGET seconds
// (default 60 — generous locally, tightened by ci.yml). Pruned landmark
// labeling is near-linear on these hub-skewed graphs; an accidental
// return to quadratic label growth blows this budget immediately.
func TestTwoHopBuildWallClock(t *testing.T) {
	budget := 60.0
	if v := os.Getenv("REGRAPH_TWOHOP_BUILD_BUDGET"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			t.Fatalf("bad REGRAPH_TWOHOP_BUILD_BUDGET %q: %v", v, err)
		}
		budget = f
	}
	cfg := DefaultConfig()
	g := gen.YouTube(cfg.Seed, cfg.YouTubeScale)
	t0 := time.Now()
	th := dist.NewTwoHop(g)
	elapsed := time.Since(t0)
	t.Logf("built %d-node index (%d B, %d entries) in %v",
		g.NumNodes(), th.Size(), th.Entries(), elapsed)
	if elapsed.Seconds() > budget {
		t.Fatalf("label build took %v, budget %.1fs", elapsed, budget)
	}
}
