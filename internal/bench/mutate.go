package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"regraph/internal/candidx"
	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/reach"
)

// Mutate measures the write path (ISSUE 9) in two parts.
//
// Index maintenance: per graph size, the cost of deriving the attribute
// inverted index for a 64-op set_attr batch incrementally
// (candidx.WithChanges — clone only the touched posting columns) versus
// rebuilding it from scratch (candidx.Build). The incremental path is
// bit-identical to the rebuild (pinned by the candidx property tests);
// what this driver pins is the factor, which must grow with graph size
// since WithChanges is O(touched columns) while Build is O(all
// postings).
//
// Mixed read/write: the same deterministic op stream and query mix
// driven through (a) the generation engine — readers run lock-free on
// their pinned snapshot while Apply commits copy-on-write generations —
// and (b) a stop-the-world baseline that takes a write lock, mutates
// the graph in place and rebuilds the whole engine, blocking every
// reader for the duration. Both arms use the engine-built matrix
// backend, whose per-generation rebuild is the expensive part of a
// commit: the generation engine pays it on the writer goroutine while
// readers keep answering from their pinned snapshot, the baseline pays
// it under the write lock with every reader stalled. Expected shape:
// commit rates are comparable (both rebuild per batch) but the
// generation engine's read throughput is a healthy multiple of the
// baseline's, recorded as the mixed-read-ratio metric. The ratio is
// meaningful from ~0.25 scale up (the CI job's setting); at tiny smoke
// scales on a single core the un-throttled writer can starve the
// readers outright (commits so short nothing ever blocks it), which is
// the no-backpressure caveat ROADMAP's write-path follow-ons note.
func Mutate(e *Env) *Table {
	t := &Table{
		ID:     "Mutate",
		Title:  "write path: incremental index maintenance and mixed read/write throughput",
		XLabel: "nodes",
		Series: []string{"incr-us", "rebuild-us", "speedup-x"},
	}

	// ---- Part 1: incremental candidx vs full rebuild -----------------
	const batchOps = 64
	var lastSpeedup float64
	for _, n := range []int{e.ScaleN(4000), e.ScaleN(16000), e.ScaleN(64000)} {
		g := gen.Synthetic(e.Cfg.Seed, n, 4*n, 3, gen.DefaultColors)
		ix := candidx.Build(g)
		// One committed set_attr batch, recorded exactly as the engine's
		// apply loop would hand it to WithChanges: the successor graph
		// already mutated plus the (old, new) change list.
		r := e.Rand(int64(9100 + n))
		ng := g.Derive()
		chs := make([]candidx.AttrChange, 0, batchOps)
		for i := 0; i < batchOps; i++ {
			v := graph.NodeID(r.Intn(n))
			key := fmt.Sprintf("a%d", r.Intn(3))
			val := fmt.Sprint(r.Intn(10))
			old, hasOld := ng.Attrs(v)[key]
			if hasOld && old == val {
				continue
			}
			chs = append(chs, candidx.AttrChange{
				Node: v, Attr: key, Old: old, New: val, HasOld: hasOld, HasNew: true,
			})
			ng.SetAttr(v, key, val)
		}

		incIters := 20 * e.Cfg.QueriesPerPoint
		incSec := timeIt(func() {
			for i := 0; i < incIters; i++ {
				ix.WithChanges(ng, chs)
			}
		})
		rbIters := e.Cfg.QueriesPerPoint
		rbSec := timeIt(func() {
			for i := 0; i < rbIters; i++ {
				candidx.Build(ng)
			}
		})
		incUS := incSec / float64(incIters) * 1e6
		rbUS := rbSec / float64(rbIters) * 1e6
		lastSpeedup = rbUS / incUS
		t.Add(fmt.Sprint(n), map[string]float64{
			"incr-us":    incUS,
			"rebuild-us": rbUS,
			"speedup-x":  lastSpeedup,
		})
	}
	t.Metric("incr-speedup-x", lastSpeedup)

	// ---- Part 2: mixed read/write throughput -------------------------
	n := e.ScaleN(2000)
	reqs, batches := mixedWorkload(e, n)
	genRead, genCommit := runMixed(e, n, reqs, batches, false)
	stwRead, stwCommit := runMixed(e, n, reqs, batches, true)
	t.Metric("read-qps-gen", genRead)
	t.Metric("read-qps-stw", stwRead)
	t.Metric("commit-qps-gen", genCommit)
	t.Metric("commit-qps-stw", stwCommit)
	t.Metric("mixed-read-ratio", genRead/stwRead)
	t.Notes = append(t.Notes,
		fmt.Sprintf("mixed: %d-node graph, 2 readers vs 1 writer, %d commits of %d ops (matrix backend both arms)",
			n, len(batches), len(batches[0])))
	return t
}

// mixedWorkload prebuilds one deterministic query mix and mutation
// stream so both arms of the mixed benchmark evaluate identical work.
func mixedWorkload(e *Env, n int) ([]engine.Request, [][]mutate.Op) {
	g := gen.Synthetic(e.Cfg.Seed, n, 4*n, 3, gen.DefaultColors)
	r := e.Rand(9901)
	qs := make([]reach.Query, 8)
	reqs := make([]engine.Request, len(qs))
	for i := range qs {
		qs[i] = gen.RQ(g, 3, 5, 1+r.Intn(3), r)
		reqs[i] = engine.Request{RQ: &qs[i]}
	}

	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	pick := func() string { return names[r.Intn(len(names))] }
	nBatches := 20 * e.Cfg.QueriesPerPoint
	const opsPerBatch = 32
	batches := make([][]mutate.Op, nBatches)
	next := n
	for b := range batches {
		ops := make([]mutate.Op, 0, opsPerBatch)
		for i := 0; i < opsPerBatch; i++ {
			switch r.Intn(5) {
			case 0:
				name := fmt.Sprintf("m%d", next)
				next++
				ops = append(ops, mutate.Op{Verb: mutate.VerbAddNode, Node: name,
					Attrs: map[string]string{"a0": fmt.Sprint(r.Intn(10))}})
				names = append(names, name)
			case 1:
				ops = append(ops, mutate.Op{Verb: mutate.VerbSetAttr, Node: pick(),
					Attrs: map[string]string{fmt.Sprintf("a%d", r.Intn(3)): fmt.Sprint(r.Intn(10))}})
			case 2:
				// Mostly fails (random pairs are rarely connected): per-op
				// failure acks are part of the workload, same in both arms.
				ops = append(ops, mutate.Op{Verb: mutate.VerbRemoveEdge, From: pick(), To: pick(),
					Color: gen.DefaultColors[r.Intn(len(gen.DefaultColors))]})
			default:
				ops = append(ops, mutate.Op{Verb: mutate.VerbAddEdge, From: pick(), To: pick(),
					Color: gen.DefaultColors[r.Intn(len(gen.DefaultColors))]})
			}
		}
		batches[b] = ops
	}
	return reqs, batches
}

// runMixed drives 2 reader goroutines against 1 writer over a fresh
// copy of the workload graph and returns (read QPS, commit QPS). With
// stw false the writer is engine.Apply (readers never block); with stw
// true it holds a write lock while mutating the graph in place and
// rebuilding the engine — the stop-the-world design a system without
// snapshot isolation is forced into.
func runMixed(e *Env, n int, reqs []engine.Request, batches [][]mutate.Op, stw bool) (float64, float64) {
	g := gen.Synthetic(e.Cfg.Seed, n, 4*n, 3, gen.DefaultColors)
	opts := engine.Options{Workers: 2, BackendKind: "matrix"}
	en := engine.MustNew(g, opts)

	var mu sync.RWMutex // guards en and g in the stop-the-world arm only
	var reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if stw {
					mu.RLock()
					en.RunBatch(reqs)
					mu.RUnlock()
				} else {
					en.RunBatch(reqs)
				}
				reads.Add(int64(len(reqs)))
			}
		}()
	}

	// Replay the op stream in whole passes until a minimum wall clock has
	// elapsed: on slow or single-core hosts one pass can finish before
	// the readers complete a single batch, which would measure a
	// degenerate window instead of a throughput. Repeat passes re-apply
	// the same ops (adds of existing nodes fail per-op, attrs and edges
	// reapply) identically in both arms, so the rates stay comparable.
	const minDur = 300 * time.Millisecond
	commits := 0
	t0 := time.Now()
	for pass := 0; pass == 0 || time.Since(t0) < minDur; pass++ {
		for _, ops := range batches {
			if stw {
				mu.Lock()
				for _, op := range ops {
					replayOp(g, op)
				}
				en = engine.MustNew(g, opts)
				mu.Unlock()
			} else if _, err := en.Apply(ops); err != nil {
				panic(fmt.Sprintf("bench: mixed apply: %v", err))
			}
			commits++
		}
	}
	elapsed := time.Since(t0).Seconds()
	nReads := float64(reads.Load())
	close(done)
	wg.Wait()
	return nReads / elapsed, float64(commits) / elapsed
}

// replayOp applies one op directly to a graph with the same tolerance
// as the engine's apply loop: resolution failures skip the op.
func replayOp(g *graph.Graph, op mutate.Op) {
	switch op.Verb {
	case mutate.VerbAddNode:
		if _, ok := g.NodeByName(op.Node); !ok {
			g.AddNode(op.Node, op.Attrs)
		}
	case mutate.VerbSetAttr:
		if v, ok := g.NodeByName(op.Node); ok {
			for k, val := range op.Attrs {
				g.SetAttr(v, k, val)
			}
		}
	case mutate.VerbAddEdge:
		if from, ok := g.NodeByName(op.From); ok {
			if to, ok := g.NodeByName(op.To); ok {
				g.AddEdge(from, to, op.Color)
			}
		}
	case mutate.VerbRemoveEdge:
		if from, ok := g.NodeByName(op.From); ok {
			if to, ok := g.NodeByName(op.To); ok {
				g.RemoveEdge(from, to, op.Color)
			}
		}
	}
}
