package bench

import (
	"fmt"
	"math/rand"

	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
	"regraph/internal/reach"
	"regraph/internal/reachidx"
	"regraph/internal/rex"
)

// AblationContainment compares the paper's linear-scan containment check
// against the exact symbolic-automaton check on random subclass-F
// expressions: elapsed time per 10k checks and the fraction of inputs on
// which the two disagree (the linear scan is only a heuristic across color
// boundaries; see DESIGN.md).
func AblationContainment(e *Env) *Table {
	t := &Table{
		ID:     "Ablation A1",
		Title:  "regex containment: linear scan vs exact automaton",
		XLabel: "atoms/expr",
		Series: []string{"Linear(s)", "Exact(s)", "Disagree%"},
	}
	for _, atoms := range []int{1, 2, 3, 5} {
		r := rand.New(rand.NewSource(e.Cfg.Seed + int64(atoms)))
		exprs := make([]rex.Expr, 200)
		for i := range exprs {
			exprs[i] = randomExpr(r, atoms)
		}
		const pairs = 10_000
		var disagree int
		linT := timeIt(func() {
			for i := 0; i < pairs; i++ {
				rex.LinearContains(exprs[i%len(exprs)], exprs[(i*7)%len(exprs)])
			}
		})
		exT := timeIt(func() {
			for i := 0; i < pairs; i++ {
				a, b := exprs[i%len(exprs)], exprs[(i*7)%len(exprs)]
				got := rex.Contains(a, b)
				if got != rex.LinearContains(a, b) {
					disagree++
				}
			}
		})
		t.Add(fmt.Sprint(atoms), map[string]float64{
			"Linear(s)": linT, "Exact(s)": exT,
			"Disagree%": 100 * float64(disagree) / pairs,
		})
	}
	return t
}

func randomExpr(r *rand.Rand, atoms int) rex.Expr {
	colors := []string{"a", "b", "c", rex.Wildcard}
	as := make([]rex.Atom, 1+r.Intn(atoms))
	for i := range as {
		m := 1 + r.Intn(5)
		if r.Intn(8) == 0 {
			m = rex.Unbounded
		}
		as[i] = rex.Atom{Color: colors[r.Intn(len(colors))], Max: m}
	}
	return rex.MustNew(as...)
}

// AblationTopoOrder quantifies what JoinMatch's reverse-topological SCC
// processing buys over a plain chaotic fixpoint, on DAG-shaped and cyclic
// patterns over the YouTube graph.
func AblationTopoOrder(e *Env) *Table {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "JoinMatch: reverse-topological order vs plain fixpoint",
		XLabel: "|Vp|",
		Unit:   "s",
		Series: []string{"TopoOrder", "NoOrder"},
	}
	g, mx, _ := e.YouTube()
	for i, vp := range []int{4, 8, 12} {
		r := e.Rand(int64(200_000 + i*1000))
		var topo, flat float64
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, gen.Spec{Nodes: vp, Edges: vp + 3, Preds: 2, Bound: 3, Colors: 2}, r)
			topo += timeIt(func() { pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}) })
			flat += timeIt(func() {
				pattern.JoinMatch(g, q, pattern.Options{Matrix: mx, DisableTopoOrder: true})
			})
		}
		n := float64(e.Cfg.QueriesPerPoint)
		t.Add(fmt.Sprint(vp), map[string]float64{"TopoOrder": topo / n, "NoOrder": flat / n})
	}
	return t
}

// AblationFilter measures the GRAIL-style reachability filter in front of
// the bi-directional search: single- and two-color RQ workloads with and
// without the filter, plus how many searches it eliminated. Sparse
// per-color subgraphs make many candidate pairs unreachable, which is
// exactly where the filter pays.
func AblationFilter(e *Env) *Table {
	t := &Table{
		ID:     "Ablation A4",
		Title:  "reachability-index filter in front of bi-directional search",
		XLabel: "workload",
		Series: []string{"NoFilter(s)", "Filter(s)", "Skipped", "IndexKB"},
	}
	g, _, _ := e.YouTube()
	ix := reachidx.Build(g, 2)
	for _, w := range []struct {
		name   string
		colors int
	}{{"1-color", 1}, {"2-color", 2}} {
		r := e.Rand(int64(400_000 + w.colors))
		qs := make([]reach.Query, 10*e.Cfg.QueriesPerPoint)
		for i := range qs {
			qs[i] = gen.RQ(g, 1, 5, w.colors, r)
		}
		plain := dist.NewCache(g, 1)
		noFilter := timeIt(func() {
			for _, q := range qs {
				q.EvalBiBFS(g, plain)
			}
		})
		filtered := dist.NewCache(g, 1)
		filtered.SetFilter(ix)
		withFilter := timeIt(func() {
			for _, q := range qs {
				q.EvalBiBFS(g, filtered)
			}
		})
		t.Add(w.name, map[string]float64{
			"NoFilter(s)": noFilter,
			"Filter(s)":   withFilter,
			"Skipped":     float64(filtered.Filtered()),
			"IndexKB":     float64(ix.Bytes()) / 1024,
		})
	}
	return t
}

// AblationIncremental compares maintaining a pattern answer under churn
// against re-evaluating from scratch after every update — the paper's
// closing motivation for incremental algorithms (Section 7). Insertions
// and deletions are reported separately: deletion maintenance is
// semi-naive (the old answer seeds the refinement) and is the direction
// where incrementality pays; insertions must re-admit candidates and are
// known to be the hard direction for simulation-based semantics.
func AblationIncremental(e *Env) *Table {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "incremental maintenance vs re-evaluation (YouTube)",
		XLabel: "updates",
		Unit:   "s total",
		Series: []string{"InsIncr", "InsFull", "DelIncr", "DelFull"},
	}
	g, _, _ := e.YouTube()
	r := e.Rand(500_000)
	q := gen.Query(g, gen.Spec{Nodes: 4, Edges: 5, Preds: 1, Bound: 3, Colors: 2}, r)
	for _, updates := range []int{8, 16, 32} {
		// Pre-draw the update script so every side replays the same edits.
		type edit struct {
			from, to graph.NodeID
			color    string
		}
		edits := make([]edit, updates)
		colors := g.Colors()
		for i := range edits {
			edits[i] = edit{
				from:  graph.NodeID(r.Intn(g.NumNodes())),
				to:    graph.NodeID(r.Intn(g.NumNodes())),
				color: colors[r.Intn(len(colors))],
			}
		}
		inc, err := pattern.NewIncremental(g, q)
		if err != nil {
			t.Notes = append(t.Notes, "query not maintainable: "+err.Error())
			break
		}
		insIncr := timeIt(func() {
			for _, ed := range edits {
				inc.InsertEdge(ed.from, ed.to, ed.color)
				inc.Result()
			}
		})
		// Deletion side: remove the same edges one at a time.
		delIncr := timeIt(func() {
			for _, ed := range edits {
				if err := inc.DeleteEdge(ed.from, ed.to, ed.color); err != nil {
					return
				}
				inc.Result()
			}
		})
		// Full-recomputation replay of the same script.
		insFull := timeIt(func() {
			for _, ed := range edits {
				g.AddEdge(ed.from, ed.to, ed.color)
				pattern.JoinMatch(g, q, pattern.Options{})
			}
		})
		delFull := timeIt(func() {
			for _, ed := range edits {
				g.RemoveEdge(ed.from, ed.to, ed.color)
				pattern.JoinMatch(g, q, pattern.Options{})
			}
		})
		t.Add(fmt.Sprint(updates), map[string]float64{
			"InsIncr": insIncr, "InsFull": insFull,
			"DelIncr": delIncr, "DelFull": delFull,
		})
	}
	return t
}

// AblationCache sweeps the LRU distance-cache capacity and reports hit
// rate and elapsed time for a fixed single-color RQ workload, motivating
// the cache design of Section 4.
func AblationCache(e *Env) *Table {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "LRU distance cache capacity (single-color RQs, YouTube)",
		XLabel: "capacity",
		Series: []string{"Time(s)", "HitRate%"},
	}
	g, _, _ := e.YouTube()
	// A pool of "frequently asked" queries replayed over several rounds —
	// the workload the paper's cache design targets.
	r := e.Rand(300_000)
	qpool := make([]reach.Query, 16)
	for i := range qpool {
		qpool[i] = gen.RQ(g, 2, 5, 1, r)
	}
	for _, capa := range []int{8, 32, 128, 512, 2048} {
		ca := dist.NewCache(g, capa)
		elapsed := timeIt(func() {
			for round := 0; round < 4; round++ {
				for _, q := range qpool {
					q.EvalBiBFS(g, ca)
				}
			}
		})
		hits, misses := ca.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		t.Add(fmt.Sprint(capa), map[string]float64{"Time(s)": elapsed, "HitRate%": rate})
	}
	return t
}
