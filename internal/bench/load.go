package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"regraph/internal/engine"
	"regraph/internal/gen"
	"regraph/internal/loadgen"
	"regraph/internal/server"
	"regraph/internal/wire"
)

// ServerLoad measures QoS under open-loop load (ISSUE 7): a loopback
// rgserve with adaptive admission is first calibrated closed-loop to
// find its saturation throughput, then driven by internal/loadgen at
// 0.5×, 1× and 2× that rate with a deadline-carrying RQ/PQ mix. Each
// row reports offered vs achieved QPS, exact p50/p99/p999 latency
// (from scheduled arrival — coordinated-omission corrected) and the
// shed / deadline-miss rates; the same numbers are exported as Metrics
// so BENCH_load.json records the whole saturation story. The expected
// shape: below saturation the tail is flat and nothing is shed; above
// it the open-loop backlog grows without bound and the deadline
// scheduler sheds the excess instead of letting every request time out
// mid-evaluation.
func ServerLoad(e *Env) *Table {
	t := &Table{
		ID:     "Load",
		Title:  "open-loop offered load: latency tail and shed rate (YouTube, matrix, adaptive admission)",
		XLabel: "offered",
		Series: []string{"offered-qps", "achieved-qps", "p50-ms", "p99-ms", "p999-ms", "shed-%", "miss-%"},
	}
	g, mx, _ := e.YouTube()
	// A wide admission window puts the overload backlog inside the
	// deadline scheduler (where it can be shed and reordered) instead
	// of in TCP buffers where no QoS applies; adaptive admission then
	// shrinks the effective bound to what the deadline budgets allow.
	en := engine.MustNew(g, engine.Options{Matrix: mx})
	srv := server.New(en, server.Options{MaxInFlight: 4096, AdaptiveInFlight: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: server load needs a loopback listener: %v", err))
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + l.Addr().String() + "/v1/query"

	// The request template pool: count-only RQs with one PQ per six
	// requests (the serving mix), every third request high-priority.
	r := e.Rand(7701)
	const nTmpl = 24
	tmpl := make([]wire.Request, 0, nTmpl)
	for i := 0; i < nTmpl; i++ {
		q := gen.RQ(g, 3, 5, 1+r.Intn(3), r)
		var req wire.Request
		if i%6 == 5 {
			req = wire.Request{PQ: fmt.Sprintf("node A\t%s\nnode B\t%s\nedge A B\t%s",
				q.From, q.To, q.Expr)}
		} else {
			req = wire.Request{RQ: &wire.RQSpec{From: q.From.String(), To: q.To.String(), Expr: q.Expr.String()}, Count: true}
		}
		if i%3 == 0 {
			req.Priority = 6
		}
		tmpl = append(tmpl, req)
	}

	// Closed-loop calibration through the same wire path: capacity is
	// what the server sustains when the client waits for completions.
	calN := 300 * e.Cfg.QueriesPerPoint
	lines := make([]wire.Request, calN)
	for i := range lines {
		lines[i] = tmpl[i%len(tmpl)]
		id := uint64(i)
		lines[i].ID = &id
	}
	t0 := time.Now()
	if _, err := postCountBatch(url, lines); err != nil {
		panic(fmt.Sprintf("bench: load calibration: %v", err))
	}
	elapsed := time.Since(t0)
	capacity := float64(calN) / elapsed.Seconds()
	meanService := elapsed * time.Duration(en.Workers()) / time.Duration(calN)
	t.Metric("capacity-qps", capacity)

	// Deadline budget: a generous multiple of the calibrated mean
	// service time, so below saturation nothing is shed while above it
	// the unbounded open-loop backlog must be.
	budget := 25 * meanService
	if budget < 20*time.Millisecond {
		budget = 20 * time.Millisecond
	}
	if budget > 2*time.Second {
		budget = 2 * time.Second
	}
	qosTmpl := make([]wire.Request, len(tmpl))
	for i := range tmpl {
		qosTmpl[i] = tmpl[i]
		qosTmpl[i].DeadlineMS = budget.Milliseconds()
	}
	t.Metric("deadline-ms", float64(budget.Milliseconds()))

	for _, m := range []float64{0.5, 1, 2} {
		rate := capacity * m
		nArr := 400 * e.Cfg.QueriesPerPoint
		dur := time.Duration(float64(nArr) / rate * float64(time.Second))
		// Long enough for an above-saturation backlog to exceed the
		// deadline budget (the whole point of the 2x row), short enough
		// for CI.
		if min := 4 * budget; dur < min {
			dur = min
		}
		if dur > 3*time.Second {
			dur = 3 * time.Second
		}
		res, err := loadgen.Run(loadgen.Config{
			URL:      url,
			Rate:     rate,
			Duration: dur,
			Arrivals: loadgen.Poisson,
			Streams:  4,
			Seed:     e.Cfg.Seed*1_000_003 + int64(m*10),
			Requests: qosTmpl,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: load run at %.1fx: %v", m, err))
		}
		label := fmt.Sprintf("%.1fx", m)
		answered := res.Sent
		shedPct := 100 * float64(res.Shed) / float64(answered)
		missPct := 100 * float64(res.DeadlineMiss) / float64(answered)
		t.Add(label, map[string]float64{
			"offered-qps":  res.OfferedQPS,
			"achieved-qps": res.AchievedQPS,
			"p50-ms":       ms(res.P50),
			"p99-ms":       ms(res.P99),
			"p999-ms":      ms(res.P999),
			"shed-%":       shedPct,
			"miss-%":       missPct,
		})
		t.Metric("offered-qps-"+label, res.OfferedQPS)
		t.Metric("achieved-qps-"+label, res.AchievedQPS)
		t.Metric("p50-ms-"+label, ms(res.P50))
		t.Metric("p99-ms-"+label, ms(res.P99))
		t.Metric("p999-ms-"+label, ms(res.P999))
		t.Metric("shed-pct-"+label, shedPct)
		t.Metric("miss-pct-"+label, missPct)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("deadline budget %v; latencies from scheduled arrival (open-loop)", budget))
	return t
}

// ms converts a duration to float milliseconds for table cells.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
