package bench

import (
	"fmt"

	"regraph/internal/baseline"
	"regraph/internal/gen"
	"regraph/internal/metrics"
	"regraph/internal/pattern"
	"regraph/internal/predicate"
	"regraph/internal/rex"
)

// youtubeQ1 is the real-life PQ Q1 of Fig. 9(a): film videos with many
// comments connected to Davedays uploads and on to popular music videos.
func youtubeQ1() *pattern.Query {
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse(`cat = "Film & Animation", com > 20, age > 300`))
	b := q.AddNode("B", predicate.MustParse(`uid = Davedays`))
	c := q.AddNode("C", predicate.MustParse(`cat = Music, len > 4, age > 600`))
	d := q.AddNode("D", predicate.MustParse(`view > 160000, com < 300`))
	q.AddEdge(a, b, rex.MustParse("fr{5}"))
	q.AddEdge(b, c, rex.MustParse("sr{6} fr"))
	q.AddEdge(b, d, rex.MustParse("fr fc"))
	q.AddEdge(c, d, rex.MustParse("sr{5} fr"))
	return q
}

// terrorQ2 is the real-life PQ Q2 of Fig. 9(a): organizations related to
// Hamas through international/domestic collaboration chains.
func terrorQ2() *pattern.Query {
	q := pattern.New()
	a := q.AddNode("A", predicate.MustParse(`at = "Armed Assault", tt = Business`))
	b := q.AddNode("B", predicate.MustParse(`at = Bombing, tt = Military`))
	h := q.AddNode("H", predicate.MustParse(`gn = Hamas`))
	d := q.AddNode("D", predicate.MustParse(`tt = "Private Citizens & Property"`))
	q.AddEdge(a, h, rex.MustParse("ic{2} dc+ ic{2}"))
	q.AddEdge(b, h, rex.MustParse("dc+ ic{2}"))
	q.AddEdge(h, d, rex.MustParse("ic{2} dc+"))
	q.AddEdge(a, b, rex.MustParse("dc+"))
	return q
}

// Fig9a runs the two real-life queries of Fig. 9(a) and reports the number
// of matches per pattern edge — the paper's demonstration that PQs find
// sensible answers conventional queries cannot express.
func Fig9a(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 9(a)",
		Title:  "real-life PQs on YouTube and Terrorist networks",
		XLabel: "query edge",
		Unit:   "matched pairs",
		Series: []string{"pairs"},
	}
	yt, ytMx, _ := e.YouTube()
	resQ1 := pattern.JoinMatch(yt, youtubeQ1(), pattern.Options{Matrix: ytMx})
	addEdgeCounts(t, "Q1", youtubeQ1(), resQ1)
	tg, tMx, _ := e.Terror()
	resQ2 := pattern.JoinMatch(tg, terrorQ2(), pattern.Options{Matrix: tMx})
	addEdgeCounts(t, "Q2", terrorQ2(), resQ2)
	if resQ1.Empty() {
		t.Notes = append(t.Notes, "Q1 had no matches on this synthetic instance")
	}
	if resQ2.Empty() {
		t.Notes = append(t.Notes, "Q2 had no matches on this synthetic instance")
	}
	return t
}

func addEdgeCounts(t *Table, name string, q *pattern.Query, res *pattern.Result) {
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		label := fmt.Sprintf("%s (%s,%s)", name, q.Node(e.From).Name, q.Node(e.To).Name)
		t.Add(label, map[string]float64{"pairs": float64(len(res.EdgePairs(ei)))})
	}
}

// exp1Sweep is the (|Vp|, |Ep|) sweep of Figures 9(b) and 9(c).
var exp1Sweep = []struct{ vp, ep int }{
	{3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7},
}

// exp1Queries generates the Exp-1 workload on the Terror graph: patterns
// restricted to one color per edge (to favor SubIso, as the paper does)
// with 2-3 predicates per node.
func (e *Env) exp1Queries(vp, ep, seedOffset int) []*pattern.Query {
	g, _, _ := e.Terror()
	r := e.Rand(int64(seedOffset)*7919 + int64(vp*100+ep))
	qs := make([]*pattern.Query, e.Cfg.QueriesPerPoint)
	for i := range qs {
		// Single-color edges with bound 3: direct edges stay inside every
		// edge language (so SubIso's edge-to-edge matches remain true
		// matches, precision 1), while the color-blind Match baseline has
		// 3-hop any-color neighborhoods to over-match in.
		qs[i] = gen.Query(g, gen.Spec{
			Nodes: vp, Edges: ep, Preds: 2, Bound: 3, Colors: 1,
		}, r)
	}
	return qs
}

// Fig9b compares the F-measure of JoinMatchM (regex-aware simulation),
// Match (bounded simulation, colors ignored) and SubIso (subgraph
// isomorphism) against the true matches — which are by definition the PQ
// answers, so JoinMatchM scores 1. The paper's shape: Match has perfect
// recall but low precision; SubIso has perfect precision but poor recall.
func Fig9b(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 9(b)",
		Title:  "effectiveness (F-measure) on the Terrorist network",
		XLabel: "(|Vp|,|Ep|)",
		Unit:   "F-measure",
		Series: []string{"JoinMatchM", "Match", "SubIso"},
	}
	g, mx, _ := e.Terror()
	for _, pt := range exp1Sweep {
		var fJoin, fMatch, fSub float64
		qs := e.exp1Queries(pt.vp, pt.ep, 1)
		for _, q := range qs {
			truthRes := pattern.JoinMatch(g, q, pattern.Options{Matrix: mx})
			truth := baseline.ResultNodePairs(q, truthRes)
			fJoin += metrics.Evaluate(truth, truth).FMeasure
			found := baseline.ResultNodePairs(q, baseline.Match(g, q, pattern.Options{Matrix: mx}))
			fMatch += metrics.Evaluate(found, truth).FMeasure
			ms, _ := baseline.SubIso(g, q, baseline.SubIsoOptions{MaxSteps: 2_000_000})
			fSub += metrics.Evaluate(baseline.NodePairs(q, ms), truth).FMeasure
		}
		n := float64(len(qs))
		t.Add(fmt.Sprintf("(%d,%d)", pt.vp, pt.ep), map[string]float64{
			"JoinMatchM": fJoin / n, "Match": fMatch / n, "SubIso": fSub / n,
		})
	}
	return t
}

// Fig9c compares elapsed time of the four Exp-1 systems on the Terrorist
// network. The paper's shape: JoinMatchM and SplitMatchM beat MatchM and
// are far faster than SubIso.
func Fig9c(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 9(c)",
		Title:  "efficiency on the Terrorist network",
		XLabel: "(|Vp|,|Ep|)",
		Unit:   "s",
		Series: []string{"JoinMatchM", "SplitMatchM", "MatchM", "SubIso"},
	}
	g, mx, _ := e.Terror()
	for _, pt := range exp1Sweep {
		sums := map[string]float64{}
		qs := e.exp1Queries(pt.vp, pt.ep, 2)
		for _, q := range qs {
			sums["JoinMatchM"] += timeIt(func() { pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}) })
			sums["SplitMatchM"] += timeIt(func() { pattern.SplitMatch(g, q, pattern.Options{Matrix: mx}) })
			sums["MatchM"] += timeIt(func() { baseline.Match(g, q, pattern.Options{Matrix: mx}) })
			sums["SubIso"] += timeIt(func() {
				baseline.SubIso(g, q, baseline.SubIsoOptions{MaxSteps: 2_000_000})
			})
		}
		n := float64(len(qs))
		for k := range sums {
			sums[k] /= n
		}
		t.Add(fmt.Sprintf("(%d,%d)", pt.vp, pt.ep), sums)
	}
	return t
}
