package bench

import (
	"fmt"

	"regraph/internal/baseline"
	"regraph/internal/dist"
	"regraph/internal/gen"
	"regraph/internal/graph"
	"regraph/internal/pattern"
)

// pqSeries are the four algorithm configurations of Exp-4.
var pqSeries = []string{"JoinMatchM", "JoinMatchC", "SplitMatchM", "SplitMatchC"}

// runPQConfigs times the four configurations on one query, accumulating
// into sums.
func runPQConfigs(g *graph.Graph, mx *dist.Matrix, ca *dist.Cache, q *pattern.Query, sums map[string]float64) {
	sums["JoinMatchM"] += timeIt(func() { pattern.JoinMatch(g, q, pattern.Options{Matrix: mx}) })
	sums["JoinMatchC"] += timeIt(func() { pattern.JoinMatch(g, q, pattern.Options{Cache: ca}) })
	sums["SplitMatchM"] += timeIt(func() { pattern.SplitMatch(g, q, pattern.Options{Matrix: mx}) })
	sums["SplitMatchC"] += timeIt(func() { pattern.SplitMatch(g, q, pattern.Options{Cache: ca}) })
}

// ytSweep runs one Fig-11 style sweep on the YouTube graph.
func (e *Env) ytSweep(id, title, xlabel string, points []int, spec func(x int) gen.Spec) *Table {
	t := &Table{
		ID: id, Title: title, XLabel: xlabel, Unit: "s",
		Series: append(append([]string{}, pqSeries...), "M-Index"),
	}
	g, mx, mxTime := e.YouTube()
	ca := dist.NewCache(g, e.Cfg.CacheSize)
	for i, x := range points {
		r := e.Rand(int64(i*1000) + int64(len(id)))
		sums := map[string]float64{}
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, spec(x), r)
			runPQConfigs(g, mx, ca, q, sums)
		}
		n := float64(e.Cfg.QueriesPerPoint)
		for k := range sums {
			sums[k] /= n
		}
		sums["M-Index"] = mxTime.Seconds()
		t.Add(fmt.Sprint(x), sums)
	}
	return t
}

// Fig11a varies the number of pattern nodes |Vp| (YouTube). Paper shape:
// matrix-backed variants beat cache variants; join beats split; time is
// not very sensitive to |Vp|.
func Fig11a(e *Env) *Table {
	return e.ytSweep("Fig. 11(a)", "PQs on YouTube, varying |Vp|", "|Vp|",
		[]int{4, 6, 8, 10, 12}, func(x int) gen.Spec {
			return gen.Spec{Nodes: x, Edges: x + 2, Preds: 3, Bound: 3, Colors: 2}
		})
}

// Fig11b varies the number of pattern edges |Ep|. Paper shape: time grows
// with |Ep| (more joins/splits), more sensitively than with |Vp|.
func Fig11b(e *Env) *Table {
	return e.ytSweep("Fig. 11(b)", "PQs on YouTube, varying |Ep|", "|Ep|",
		[]int{4, 6, 8, 10, 12}, func(x int) gen.Spec {
			return gen.Spec{Nodes: 4, Edges: x, Preds: 3, Bound: 3, Colors: 2}
		})
}

// Fig11c varies the number of predicates per node. Paper shape: more
// predicates → smaller candidate sets → faster evaluation.
func Fig11c(e *Env) *Table {
	return e.ytSweep("Fig. 11(c)", "PQs on YouTube, varying |pred|", "|pred|",
		[]int{1, 2, 3, 4, 5}, func(x int) gen.Spec {
			return gen.Spec{Nodes: 6, Edges: 8, Preds: x, Bound: 3, Colors: 2}
		})
}

// Fig11d varies the per-atom bound b. Paper shape: time grows with b (more
// matches within reach).
func Fig11d(e *Env) *Table {
	return e.ytSweep("Fig. 11(d)", "PQs on YouTube, varying bound b", "b",
		[]int{1, 3, 5, 7, 9}, func(x int) gen.Spec {
			return gen.Spec{Nodes: 6, Edges: 8, Preds: 3, Bound: x, Colors: 2}
		})
}

// synthSweep runs a Fig-12 style sweep over synthetic graphs.
func (e *Env) synthSweep(id, title, xlabel string, points []int, shape func(x int) (nodes, edges int), spec gen.Spec) *Table {
	t := &Table{
		ID: id, Title: title, XLabel: xlabel, Unit: "s",
		Series: pqSeries,
	}
	for i, x := range points {
		nodes, edges := shape(x)
		g, mx, _ := e.Synthetic(nodes, edges)
		ca := dist.NewCache(g, e.Cfg.CacheSize)
		r := e.Rand(int64(i*1000) + 31*int64(len(id)))
		sums := map[string]float64{}
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, spec, r)
			runPQConfigs(g, mx, ca, q, sums)
		}
		n := float64(e.Cfg.QueriesPerPoint)
		for k := range sums {
			sums[k] /= n
		}
		t.Add(fmt.Sprint(x), sums)
	}
	return t
}

// exp4Spec is the fixed query spec of the Fig-12 scalability runs (the
// paper uses |Vp|=6, |Ep|=8, c=4, |pred|=3, b=5).
var exp4Spec = gen.Spec{Nodes: 6, Edges: 8, Preds: 3, Bound: 5, Colors: 4}

// Fig12a varies |V| with |E| fixed at (scaled) 20k. Paper shape: all four
// configurations scale roughly linearly in |V|; matrix-backed wins.
func Fig12a(e *Env) *Table {
	points := []int{1000, 2000, 4000, 6000, 8000}
	return e.synthSweep("Fig. 12(a)", "synthetic G(|V|, 20k), varying |V|", "|V| (paper units)",
		points, func(x int) (int, int) { return e.ScaleN(x), e.ScaleN(20000) }, exp4Spec)
}

// Fig12b varies |E| with |V| fixed at (scaled) 8k. Paper shape: time grows
// with |E| for all configurations.
func Fig12b(e *Env) *Table {
	points := []int{3000, 9000, 15000, 21000, 27000}
	return e.synthSweep("Fig. 12(b)", "synthetic G(8k, |E|), varying |E|", "|E| (paper units)",
		points, func(x int) (int, int) { return e.ScaleN(8000), e.ScaleN(x) }, exp4Spec)
}

// synthFixed returns the fixed synthetic graph of Figures 12(c)-(e).
func (e *Env) synthFixed() (int, int) { return e.ScaleN(8000), e.ScaleN(20000) }

// Fig12c varies |Vp| on the fixed synthetic graph.
func Fig12c(e *Env) *Table {
	nodes, edges := e.synthFixed()
	t := &Table{ID: "Fig. 12(c)", Title: "synthetic graph, varying |Vp|", XLabel: "|Vp|", Unit: "s", Series: pqSeries}
	g, mx, _ := e.Synthetic(nodes, edges)
	ca := dist.NewCache(g, e.Cfg.CacheSize)
	for i, x := range []int{4, 8, 12, 16, 20, 24} {
		r := e.Rand(int64(110_000 + i*1000))
		sums := map[string]float64{}
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, gen.Spec{Nodes: x, Edges: x + 2, Preds: 3, Bound: 5, Colors: 4}, r)
			runPQConfigs(g, mx, ca, q, sums)
		}
		n := float64(e.Cfg.QueriesPerPoint)
		for k := range sums {
			sums[k] /= n
		}
		t.Add(fmt.Sprint(x), sums)
	}
	return t
}

// Fig12d varies |Ep| on the fixed synthetic graph.
func Fig12d(e *Env) *Table {
	nodes, edges := e.synthFixed()
	t := &Table{ID: "Fig. 12(d)", Title: "synthetic graph, varying |Ep|", XLabel: "|Ep|", Unit: "s", Series: pqSeries}
	g, mx, _ := e.Synthetic(nodes, edges)
	ca := dist.NewCache(g, e.Cfg.CacheSize)
	for i, x := range []int{5, 10, 15, 20, 25} {
		r := e.Rand(int64(120_000 + i*1000))
		sums := map[string]float64{}
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, gen.Spec{Nodes: 6, Edges: x, Preds: 3, Bound: 5, Colors: 4}, r)
			runPQConfigs(g, mx, ca, q, sums)
		}
		n := float64(e.Cfg.QueriesPerPoint)
		for k := range sums {
			sums[k] /= n
		}
		t.Add(fmt.Sprint(x), sums)
	}
	return t
}

// Fig12e varies |pred| on the fixed synthetic graph.
func Fig12e(e *Env) *Table {
	nodes, edges := e.synthFixed()
	t := &Table{ID: "Fig. 12(e)", Title: "synthetic graph, varying |pred|", XLabel: "|pred|", Unit: "s", Series: pqSeries}
	g, mx, _ := e.Synthetic(nodes, edges)
	ca := dist.NewCache(g, e.Cfg.CacheSize)
	for i, x := range []int{2, 3, 4, 5, 6, 7} {
		r := e.Rand(int64(130_000 + i*1000))
		sums := map[string]float64{}
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			q := gen.Query(g, gen.Spec{Nodes: 6, Edges: 8, Preds: x, Bound: 5, Colors: 4}, r)
			runPQConfigs(g, mx, ca, q, sums)
		}
		n := float64(e.Cfg.QueriesPerPoint)
		for k := range sums {
			sums[k] /= n
		}
		t.Add(fmt.Sprint(x), sums)
	}
	return t
}

// Fig12f compares SubIso and SplitMatchC on small synthetic graphs,
// reporting both elapsed time and the number of node matches found. Paper
// shape: SubIso takes hundreds of seconds and finds far fewer matches,
// SplitMatchC answers in under a second.
func Fig12f(e *Env) *Table {
	t := &Table{
		ID:     "Fig. 12(f)",
		Title:  "SubIso vs SplitMatchC on small synthetic graphs",
		XLabel: "(|V|,|E|)",
		Series: []string{"SubIso(s)", "Split(s)", "SubIsoMatch", "SplitMatch"},
	}
	r := e.Rand(140_000)
	for _, pt := range []struct{ v, ed int }{{50, 100}, {100, 200}, {150, 300}, {200, 400}, {250, 500}} {
		g := gen.Synthetic(e.Cfg.Seed+int64(pt.v), pt.v, pt.ed, 3, gen.DefaultColors)
		ca := dist.NewCache(g, e.Cfg.CacheSize)
		var subT, splitT, subM, splitM float64
		for k := 0; k < e.Cfg.QueriesPerPoint; k++ {
			// The paper's Fig 12(f) queries: 8 nodes, 15 edges, c{5}
			// expressions. One predicate per node here: these graphs have
			// only 50-250 nodes, so the paper's 3 equality predicates
			// would leave empty candidate sets on our 10-value attribute
			// domains and both systems would trivially return nothing.
			q := gen.Query(g, gen.Spec{Nodes: 8, Edges: 15, Preds: 1, Bound: 5, Colors: 4}, r)
			var ms []baseline.Mapping
			subT += timeIt(func() {
				ms, _ = baseline.SubIso(g, q, baseline.SubIsoOptions{MaxSteps: 50_000_000})
			})
			subM += float64(len(baseline.NodePairs(q, ms)))
			var res *pattern.Result
			splitT += timeIt(func() { res = pattern.SplitMatch(g, q, pattern.Options{Cache: ca}) })
			splitM += float64(len(baseline.ResultNodePairs(q, res)))
		}
		n := float64(e.Cfg.QueriesPerPoint)
		t.Add(fmt.Sprintf("(%d,%d)", pt.v, pt.ed), map[string]float64{
			"SubIso(s)": subT / n, "Split(s)": splitT / n,
			"SubIsoMatch": subM / n, "SplitMatch": splitM / n,
		})
	}
	return t
}
