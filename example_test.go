package regraph_test

import (
	"context"
	"fmt"
	"sort"

	"regraph"
)

// The package-level example: the paper's Fig. 1 reachability query Q1
// (Example 2.2), evaluated with the precomputed distance matrix.
func Example() {
	g := regraph.Essembly()
	mx := regraph.NewMatrix(g)

	q := regraph.RQ{
		From: regraph.MustPredicate("job = biologist, sp = cloning"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fa{2} fn"),
	}
	for _, p := range q.EvalMatrix(g, mx) {
		fmt.Println(g.Node(p.From).Name, "->", g.Node(p.To).Name)
	}
	// Output:
	// C1 -> B1
	// C1 -> B2
	// C2 -> B1
	// C2 -> B2
}

// A pattern query under the revised graph simulation: Alice's doctor
// friends-nemeses and the biologists against them (a fragment of the
// paper's Q2).
func ExampleJoinMatch() {
	g := regraph.Essembly()
	q := regraph.NewPQ()
	c := q.AddNode("C", regraph.MustPredicate("job = biologist"))
	b := q.AddNode("B", regraph.MustPredicate("job = doctor"))
	d := q.AddNode("D", regraph.MustPredicate("uid = Alice001"))
	q.AddEdge(c, b, regraph.MustRegex("fn"))
	q.AddEdge(b, d, regraph.MustRegex("fn"))

	res := regraph.JoinMatch(g, q, regraph.EvalOptions{})
	fmt.Print(res.String(g))
	// Output:
	// (C,B): {(C3,B1), (C3,B2)}
	// (B,D): {(B1,D1), (B2,D1)}
}

// Minimization merges simulation-equivalent pattern nodes and removes
// redundant edges (algorithm minPQs, Theorem 3.4).
func ExampleMinimize() {
	q := regraph.NewPQ()
	root := q.AddNode("R", regraph.MustPredicate("t = r"))
	c1 := q.AddNode("C1", regraph.MustPredicate("t = c"))
	c2 := q.AddNode("C2", regraph.MustPredicate("t = c"))
	q.AddEdge(root, c1, regraph.MustRegex("a"))
	q.AddEdge(root, c2, regraph.MustRegex("a"))

	m := regraph.Minimize(q)
	fmt.Println("size:", q.Size(), "->", m.Size())
	fmt.Println("equivalent:", regraph.PQEquivalent(q, m))
	// Output:
	// size: 5 -> 3
	// equivalent: true
}

// Containment of pattern queries is decided in cubic time through the
// revised graph similarity (Lemma 3.1): a one-edge pattern with a weaker
// expression contains a stricter one.
func ExamplePQContains() {
	strict := regraph.NewPQ()
	a := strict.AddNode("A", regraph.MustPredicate("t = x"))
	b := strict.AddNode("B", regraph.MustPredicate("t = y"))
	strict.AddEdge(a, b, regraph.MustRegex("e"))

	loose := regraph.NewPQ()
	a2 := loose.AddNode("A", regraph.MustPredicate("t = x"))
	b2 := loose.AddNode("B", regraph.MustPredicate("t = y"))
	loose.AddEdge(a2, b2, regraph.MustRegex("e{3}"))

	fmt.Println(regraph.PQContains(strict, loose))
	fmt.Println(regraph.PQContains(loose, strict))
	// Output:
	// true
	// false
}

// A resident engine owns the graph plus one shared distance structure
// and evaluates whole batches concurrently across its worker pool; each
// worker reuses a private scratch arena, so a long-running engine stops
// allocating per query.
func ExampleEngine_RunBatch() {
	g := regraph.Essembly()
	eng := regraph.MustEngine(g, regraph.EngineOptions{Workers: 2})

	q1 := regraph.RQ{
		From: regraph.MustPredicate("job = biologist, sp = cloning"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fa{2} fn"),
	}
	q2 := regraph.RQ{
		From: regraph.MustPredicate("job = biologist"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fn"),
	}
	for i, res := range eng.RunBatch([]regraph.BatchRequest{{RQ: &q1}, {RQ: &q2}}) {
		fmt.Printf("query %d: %d pairs\n", i, len(res.Pairs))
	}
	// Output:
	// query 0: 4 pairs
	// query 1: 2 pairs
}

// A streaming session: requests are admitted one at a time under an
// in-flight bound (Submit blocks when it is reached — back-pressure),
// answers stream out in completion order tagged with request ids, and
// cancelling the context would stop in-flight evaluation at the
// evaluators' checkpoints. Results arrive in completion order; sort by
// ID to restore submission order.
func ExampleEngine_Open() {
	g := regraph.Essembly()
	eng := regraph.MustEngine(g, regraph.EngineOptions{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := eng.Open(ctx, regraph.SessionOptions{MaxInFlight: 4})

	queries := []regraph.RQ{
		{
			From: regraph.MustPredicate("job = biologist, sp = cloning"),
			To:   regraph.MustPredicate("job = doctor"),
			Expr: regraph.MustRegex("fa{2} fn"),
		},
		{
			From: regraph.MustPredicate("job = biologist"),
			To:   regraph.MustPredicate("job = doctor"),
			Expr: regraph.MustRegex("fn"),
		},
	}
	go func() {
		for i := range queries {
			if _, err := s.Submit(ctx, regraph.BatchRequest{RQ: &queries[i]}); err != nil {
				return
			}
		}
		s.Close() // stop admission; Results closes once drained
	}()

	var results []regraph.BatchResult
	for r := range s.Results() {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, r := range results {
		fmt.Printf("query %d: %d pairs\n", r.ID, len(r.Pairs))
	}
	// Output:
	// query 0: 4 pairs
	// query 1: 2 pairs
}

// Submitting with an Emit callback streams the answer pairs from the
// evaluating worker instead of materializing a slice: the session then
// holds no answer memory for the request at all, and Stats exposes the
// serving counters.
func ExampleSession_Submit() {
	g := regraph.Essembly()
	eng := regraph.MustEngine(g, regraph.EngineOptions{Workers: 1})
	s := eng.Open(context.Background(), regraph.SessionOptions{MaxInFlight: 1})

	q := regraph.RQ{
		From: regraph.MustPredicate("job = biologist"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fn"),
	}
	pairs := 0
	id, err := s.Submit(context.Background(), regraph.BatchRequest{
		RQ:   &q,
		Emit: func(regraph.Pair) bool { pairs++; return true },
	})
	if err != nil {
		panic(err)
	}
	go s.Close()
	r := <-s.Results()
	fmt.Printf("request %d == result %d, streamed %d pairs, materialized %d\n",
		id, r.ID, pairs, len(r.Pairs))
	st := s.Stats()
	fmt.Printf("submitted %d, completed %d, cancelled %d\n",
		st.Submitted, st.Completed, st.Cancelled)
	// Output:
	// request 0 == result 0, streamed 2 pairs, materialized 0
	// submitted 1, completed 1, cancelled 0
}

// The scratch-accepting closure API: push a compiled expression forward
// from a source set without allocating, reusing one arena across calls.
// The result is owned by the arena — copy it before the next call if it
// must be retained.
func ExampleForwardClosureScratch() {
	g := regraph.Essembly()
	atoms, ok := regraph.CompileRegex(g, regraph.MustRegex("fa{2} fn"))
	if !ok {
		panic("expression mentions a color absent from the graph")
	}
	s := regraph.NewScratch()
	src := make([]bool, g.NumNodes())
	c1, _ := g.NodeByName("C1")
	src[c1] = true

	reached := regraph.ForwardClosureScratch(g, src, atoms, s)
	for v, in := range reached {
		if in {
			fmt.Println(g.Node(regraph.NodeID(v)).Name)
		}
	}
	// Output:
	// B1
	// B2
}

// The attribute inverted index answers "which nodes match this
// predicate?" by binary search over sorted posting columns instead of
// scanning every node, and a memo layered on it caches repeated
// predicates until the graph mutates. The engine builds and shares one
// automatically; standalone evaluation can pass either explicitly.
func ExampleNewCandidateIndex() {
	g := regraph.Essembly()
	ix := regraph.NewCandidateIndex(g)

	doctors := ix.Candidates(regraph.MustPredicate("job = doctor"))
	for _, v := range doctors {
		fmt.Println(g.Node(v).Name)
	}

	// The same index accelerates a full query evaluation.
	q := regraph.RQ{
		From: regraph.MustPredicate("job = biologist, sp = cloning"),
		To:   regraph.MustPredicate("job = doctor"),
		Expr: regraph.MustRegex("fa{2} fn"),
	}
	mx := regraph.NewMatrix(g)
	fmt.Printf("%d pairs\n", len(q.EvalMatrixWith(g, mx, ix)))
	// Output:
	// B1
	// B2
	// 4 pairs
}

// A CandidateMemo tracks the graph's mutation epoch: cached candidate
// sets are retired the moment the graph changes, so mutate-then-query
// always sees fresh answers.
func ExampleNewCandidateMemo() {
	g := regraph.NewGraph()
	g.AddNode("ann", map[string]string{"job": "doctor"})
	g.AddNode("bob", map[string]string{"job": "nurse"})
	memo := regraph.NewCandidateMemo(g)

	p := regraph.MustPredicate("job = doctor")
	fmt.Println(len(memo.Candidates(p)))

	g.AddNode("cal", map[string]string{"job": "doctor"}) // bumps g.Epoch()
	fmt.Println(len(memo.Candidates(p)))
	// Output:
	// 1
	// 2
}
