// Command rgrouter is the fault-tolerant replica router: it serves the
// same POST /v1/query NDJSON stream contract as rgserve, fanning each
// stream's request lines out over a set of rgserve replicas with
// health-gated load balancing, circuit breaking, budgeted retry,
// optional hedging, and mid-stream failover (see internal/router).
//
//	rgserve -demo -addr :8081 &
//	rgserve -demo -addr :8082 &
//	rgrouter -addr :8080 -replicas http://localhost:8081,http://localhost:8082
//
//	curl -sN -X POST --data-binary @queries.ndjson localhost:8080/v1/query
//	curl -s localhost:8080/v1/stats
//
// Writes have a single owner, not a replica set: POST /v1/mutate and
// POST /v1/subscribe stream through to the -writer upstream when one is
// configured. Without -writer the router is a read-only tier and
// refuses them explicitly — in each endpoint's own NDJSON protocol,
// every line tagged error_kind "read_only" — never with a bare 404:
//
//	rgrouter -addr :8080 -replicas http://localhost:8081 -writer http://localhost:8090
//
// On SIGINT/SIGTERM the router drains: /readyz turns 503, new streams
// are refused, live ones run to completion, and after -drain-timeout
// any stragglers are cancelled (their remaining requests answered with
// error_kind "canceled") before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regraph/internal/router"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated replica base URLs (http://host:port)")
		writer        = flag.String("writer", "", "writer upstream base URL for /v1/mutate and /v1/subscribe (empty = read-only tier, writes refused with error_kind read_only)")
		maxInFlight   = flag.Int("maxinflight", 0, "per-stream bound on unanswered requests (0 = default 256)")
		probeInterval = flag.Duration("probe-interval", 0, "replica readiness probe period (0 = default 250ms)")
		failThreshold = flag.Int("fail-threshold", 0, "consecutive failures that open a replica's breaker (0 = default 3)")
		cooldown      = flag.Duration("cooldown", 0, "open-breaker cooldown before a half-open trial (0 = default 1s)")
		maxAttempts   = flag.Int("max-attempts", 0, "dispatches per request incl. the first (0 = default 4)")
		retryRate     = flag.Float64("retry-rate", 0, "retry budget refill, tokens/sec (0 = default 50)")
		retryBurst    = flag.Float64("retry-burst", 0, "retry budget burst (0 = default 100)")
		backoff       = flag.Duration("backoff", 0, "base retry backoff, doubled per attempt (0 = default 25ms)")
		maxBackoff    = flag.Duration("max-backoff", 0, "retry backoff cap (0 = default 1s)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "duplicate a request to a second replica after this delay (0 = off)")
		stallTimeout  = flag.Duration("stall-timeout", 0, "fail an upstream with unanswered requests but no progress for this long (0 = default 5s)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := router.New(router.Options{
		Replicas:         urls,
		Writer:           *writer,
		MaxInFlight:      *maxInFlight,
		ProbeInterval:    *probeInterval,
		FailThreshold:    *failThreshold,
		Cooldown:         *cooldown,
		MaxAttempts:      *maxAttempts,
		RetryBudgetRate:  *retryRate,
		RetryBudgetBurst: *retryBurst,
		RetryBackoff:     *backoff,
		MaxRetryBackoff:  *maxBackoff,
		HedgeAfter:       *hedgeAfter,
		StallTimeout:     *stallTimeout,
	})
	if err != nil {
		fatal(err)
	}
	rt.ProbeNow()

	errc := make(chan error, 1)
	go func() { errc <- rt.ListenAndServe(*addr) }()
	mode := "read-only (no -writer)"
	if *writer != "" {
		mode = "writes to " + *writer
	}
	fmt.Fprintf(os.Stderr, "rgrouter: listening on %s, routing to %d replicas, %s\n", *addr, len(urls), mode)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rgrouter: %v: draining (budget %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rgrouter: forced shutdown: %v\n", err)
		}
		st := rt.Stats()
		fmt.Fprintf(os.Stderr, "rgrouter: served %d streams, %d requests (%d retries, %d hedges, %d dup-suppressed, %d unavailable)\n",
			st.StreamsTotal, st.Requests, st.Retries, st.Hedges, st.DupSuppressed, st.Unavailable)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgrouter:", err)
	os.Exit(1)
}
