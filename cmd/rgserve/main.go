// Command rgserve serves a data graph as an HTTP query service speaking
// the NDJSON wire format of internal/wire (see internal/server for the
// endpoint contract).
//
//	rgserve -demo -addr :8080
//	rgserve -graph g.tsv -addr :8080 -workers 8 -stream-timeout 30s
//
// Query it by streaming NDJSON request lines to POST /v1/query:
//
//	curl -sN -X POST --data-binary @queries.ndjson localhost:8080/v1/query
//	curl -s localhost:8080/v1/stats
//
// or with cmd/rgquery's -remote mode:
//
//	rgquery -remote http://localhost:8080 -batch queries.tsv
//
// Mutate it by streaming NDJSON mutation lines (or the equivalent
// qlang text form) to POST /v1/mutate — each -mutate-batch chunk
// commits as one snapshot-isolated generation — and follow a standing
// pattern query with POST /v1/subscribe:
//
//	curl -sN -X POST --data-binary @mutations.ndjson localhost:8080/v1/mutate
//	rgquery -remote http://localhost:8080 -mutate mutations.ndjson
//	rgquery -remote http://localhost:8080 -subscribe pattern.pq
//
// The engine builds (and per generation rebuilds) its own backend, so
// every -backend kind accepts mutations.
//
// With -wal-dir the server is durable: every committed mutation batch
// is appended to a write-ahead log before it is acknowledged, and on
// restart the engine recovers by loading the log's latest snapshot and
// replaying the tail through the ordinary apply path — the log's
// snapshot (when one exists) wins over the -graph seed, so -graph only
// matters on the very first run. -fsync picks the durability/latency
// trade-off (always, interval, none — see internal/wal):
//
//	rgserve -demo -wal-dir /var/lib/regraph/wal -fsync always
//	rgserve -wal-dir /var/lib/regraph/wal -fsync interval   # seedless restart
//
// On SIGINT/SIGTERM the server drains: new streams are refused, live
// ones run to completion, and after -drain-timeout any stragglers'
// sessions are cancelled (their remaining requests answered with
// context errors) before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"regraph"
	"regraph/internal/engine"
	"regraph/internal/graph"
	"regraph/internal/server"
	"regraph/internal/wal"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		graphPath     = flag.String("graph", "", "graph file (TSV, see graph.WriteTSV)")
		demo          = flag.Bool("demo", false, "use the built-in Fig. 1 Essembly graph")
		workers       = flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
		useMatrix     = flag.Bool("matrix", true, "precompute the distance matrix (shorthand for -backend matrix/cache)")
		backend       = flag.String("backend", "", "distance backend: matrix, twohop, cache or auto (overrides -matrix)")
		memBudget     = flag.Int64("membudget", 1<<30, "auto backend: index memory budget in bytes")
		grailK        = flag.Int("grail", 0, "install a GRAIL reachability filter with k traversals in front of the backend (0 = off; not with matrix)")
		candIdx       = flag.Bool("candidx", true, "build the attribute inverted index")
		maxInFlight   = flag.Int("maxinflight", 0, "per-stream admission bound (0 = 2x workers)")
		adaptive      = flag.Bool("adaptive", false, "adaptive admission: shrink the in-flight bound when p99 latency nears the requests' deadline budgets")
		streamTimeout = flag.Duration("stream-timeout", 0, "max duration of one query stream (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
		mutateBatch   = flag.Int("mutate-batch", 0, "ops per committed mutation generation on /v1/mutate (0 = 1024)")
		subBuffer     = flag.Int("sub-buffer", 0, "commits a /v1/subscribe client may lag before being dropped (0 = 16)")
		maxPendingOps = flag.Int("max-pending-ops", 0, "per-mutation-stream admission bound on unacked ops (0 = 4096)")
		maxPendingB   = flag.Int64("max-pending-bytes", 0, "per-mutation-stream admission bound on unacked input bytes (0 = 8 MiB)")
		walDir        = flag.String("wal-dir", "", "write-ahead log directory: append every committed batch, recover from it at startup")
		fsync         = flag.String("fsync", "always", "WAL durability policy: always, interval or none")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "rotate WAL segments past this size (0 = 64 MiB)")
	)
	flag.Parse()

	// With a WAL whose snapshot will win anyway, the seed is optional: a
	// bare `rgserve -wal-dir DIR` restarts from the log alone. A -graph
	// that was asked for but fails to load is still fatal either way.
	var g *regraph.Graph
	if *graphPath == "" && !*demo && *walDir != "" {
		g = nil
	} else {
		var err error
		if g, err = loadGraph(*graphPath, *demo); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rgserve: graph: %d nodes, %d edges, colors %v\n",
			g.NumNodes(), g.NumEdges(), g.Colors())
	}

	kind := *backend
	if kind == "" {
		if *useMatrix {
			kind = "matrix"
		} else {
			kind = "cache"
		}
	}
	opts := regraph.EngineOptions{Workers: *workers, DisableCandidateIndex: !*candIdx, ReachFilterK: *grailK}
	t0 := time.Now()
	// The engine builds every backend itself (BackendKind, not an
	// externally constructed Matrix/TwoHop): only engine-built backends
	// can be rebuilt per generation, and a serving engine must stay
	// mutable for /v1/mutate.
	switch kind {
	case "matrix":
		if *grailK > 0 {
			fatal(fmt.Errorf("-grail needs a searching backend (twohop, cache or auto), not matrix"))
		}
		opts.BackendKind = "matrix"
	case "twohop", "cache":
		opts.BackendKind = kind
	case "auto":
		opts.AutoBackend = true
		opts.MemoryBudget = *memBudget
	default:
		fatal(fmt.Errorf("unknown -backend %q (want matrix, twohop, cache or auto)", kind))
	}
	var e *regraph.Engine
	if *walDir == "" {
		var err error
		if e, err = regraph.NewEngine(g, opts); err != nil {
			fatal(err)
		}
	} else {
		w, err := wal.Open(wal.Options{Dir: *walDir, Fsync: *fsync, SegmentBytes: *walSegBytes})
		if err != nil {
			fatal(err)
		}
		var info engine.RecoverInfo
		if e, info, err = engine.Recover(w, g, opts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rgserve: wal: recovered to generation %d in %v (snapshot gen %d + %d batches / %d ops, fsync=%s)\n",
			info.LastGen, info.Duration.Round(time.Millisecond), info.SnapshotGen, info.Batches, info.Ops, *fsync)
		if info.Batches > 0 {
			// Fold the replayed tail into a fresh snapshot so the next
			// restart replays only what commits from here on.
			if err := e.CompactWAL(); err != nil {
				fatal(fmt.Errorf("wal: compact after recovery: %w", err))
			}
		}
	}
	fmt.Fprintf(os.Stderr, "rgserve: %s backend ready in %v\n", e.BackendKind(), time.Since(t0).Round(time.Millisecond))
	srv := server.New(e, server.Options{
		MaxInFlight:      *maxInFlight,
		AdaptiveInFlight: *adaptive,
		StreamTimeout:    *streamTimeout,
		MutateBatch:      *mutateBatch,
		SubscribeBuffer:  *subBuffer,
		MaxPendingOps:    *maxPendingOps,
		MaxPendingBytes:  *maxPendingB,
	})

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "rgserve: listening on %s (%d workers, backend=%s)\n", *addr, e.Workers(), e.BackendKind())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rgserve: %v: draining (budget %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rgserve: forced shutdown: %v\n", err)
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "rgserve: served %d streams, %d queries (%d completed, %d cancelled, %d failed, %d shed, %d deadline-missed), p95 %v p99 %v\n",
			st.StreamsTotal, st.Submitted, st.Completed, st.Cancelled, st.Failed, st.Expired, st.Missed, st.Latency.P95, st.Latency.P99)
		if st.MutateStreams > 0 {
			fmt.Fprintf(os.Stderr, "rgserve: write path: generation %d after %d mutation streams (%d ops applied, %d failed)\n",
				st.Generation, st.MutateStreams, st.OpsApplied, st.OpsFailed)
		}
		// A buffered WAL (fsync interval/none) flushes on Close: a graceful
		// drain loses nothing regardless of policy.
		if w := e.WAL(); w != nil {
			ws := w.Stats()
			if err := w.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rgserve: wal: close: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "rgserve: wal: %d batches (%d bytes) appended, %d fsyncs, %d rotations, %d segments at generation %d\n",
				ws.Appended, ws.AppendedBytes, ws.Fsyncs, ws.Rotations, ws.Segments, ws.LastGen)
		}
	}
}

func loadGraph(path string, demo bool) (*regraph.Graph, error) {
	if demo {
		return regraph.Essembly(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph FILE or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadTSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgserve:", err)
	os.Exit(1)
}
