// Command rgquery loads a data graph and evaluates a reachability query
// or a graph pattern query against it.
//
// The graph file uses the TSV format of graph.WriteTSV:
//
//	node <name> [attr=value]...
//	edge <from> <to> <color>
//
// A reachability query is given with -from, -to and -expr:
//
//	rgquery -graph g.tsv -from 'job = biologist' -to 'job = doctor' -expr 'fa{2} fn'
//
// A pattern query is given with -pattern, one line per node or edge:
//
//	node <name> <predicate or *>
//	edge <from> <to> <regex>
//
// A batch of reachability queries is given with -batch, one query per
// tab-separated line (use * for an always-true predicate; # starts a
// comment), evaluated concurrently across -workers workers:
//
//	<from predicate> <TAB> <to predicate> <TAB> <expr>
//
// With -stream the batch runs through a streaming engine session and
// each result is printed as one NDJSON line (the wire format of
// internal/wire) on stdout the moment it completes (completion order,
// not input order), carrying the request id, the answer-pair count
// (streamed — pairs are never materialized) and the evaluation latency;
// the trailing summary goes to stderr so stdout stays machine-readable:
//
//	{"id":3,"kind":"rq","query":"RQ[...]","count":17,"latency_us":412}
//
// With -remote URL the query does not run locally at all: the batch (or
// the single -from/-to/-expr query, or the -pattern file) is streamed
// as NDJSON request lines to URL/v1/query on an rgserve instance and
// the server's response lines are passed through to stdout as they
// arrive.
//
// -remote also carries the write path. -mutate FILE streams a mutation
// script (NDJSON ops or the qlang text form of internal/mutate; "-"
// reads stdin) to URL/v1/mutate — the server commits it in
// snapshot-isolated generations — passing the per-op ack lines through
// to stdout and summarizing on stderr. -subscribe FILE registers the
// pattern file as a standing query on URL/v1/subscribe and passes the
// delta stream (init line, then one delta line per committed batch
// that changes the answer) through to stdout until the server ends it:
//
//	rgquery -remote http://localhost:8080 -mutate mutations.ndjson
//	rgquery -remote http://localhost:8080 -subscribe pattern.pq
//
// Local evaluation picks its distance backend with -backend: matrix
// (precomputed, fastest, (m+1)·|V|²·4 bytes), twohop (2-hop labels —
// index-fast lookups on graphs whose matrix does not fit), cache (LRU
// over bidirectional search) or auto (matrix if it fits -membudget
// bytes, else 2-hop under the same budget, else cache). -grail K
// fronts a searching backend with a GRAIL negative reachability
// filter. The legacy -matrix bool remains a shorthand for
// matrix/cache.
//
// With -demo the built-in Fig. 1 Essembly graph is used.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"regraph"
	"regraph/internal/graph"
	"regraph/internal/mutate"
	"regraph/internal/qlang"
	"regraph/internal/wire"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (TSV)")
		demo      = flag.Bool("demo", false, "use the built-in Fig. 1 Essembly graph")
		from      = flag.String("from", "", "RQ: source predicate")
		to        = flag.String("to", "", "RQ: destination predicate")
		expr      = flag.String("expr", "", "RQ: path regular expression (subclass F)")
		patPath   = flag.String("pattern", "", "PQ: pattern file")
		batchPath = flag.String("batch", "", "batch of RQs, one per tab-separated line")
		stream    = flag.Bool("stream", false, "batch: print each result as an NDJSON line the moment it completes")
		remote    = flag.String("remote", "", "rgserve base URL: run the queries over the wire instead of locally")
		mutFile   = flag.String("mutate", "", "remote: stream a mutation script (NDJSON or text ops, - = stdin) to URL/v1/mutate")
		subFile   = flag.String("subscribe", "", "remote: register the pattern file as a standing query on URL/v1/subscribe")
		priority  = flag.Int("priority", 0, "remote: scheduling priority for every request (0-7, higher = more weight)")
		deadline  = flag.Duration("deadline", 0, "remote: per-request deadline budget, e.g. 250ms (0 = none)")
		dialTries = flag.Int("dial-retries", 3, "remote: retries if the initial connection is refused (0 = fail on first refusal)")
		dialWait  = flag.Duration("dial-backoff", 100*time.Millisecond, "remote: first retry delay, doubled per attempt (capped at 2s)")
		workers   = flag.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
		useMatrix = flag.Bool("matrix", true, "precompute the distance matrix (shorthand for -backend matrix/cache)")
		backend   = flag.String("backend", "", "distance backend: matrix, twohop, cache or auto (overrides -matrix)")
		memBudget = flag.Int64("membudget", 1<<30, "auto backend: index memory budget in bytes")
		grailK    = flag.Int("grail", 0, "install a GRAIL reachability filter with k traversals in front of the backend (0 = off; not with matrix)")
		candIdx   = flag.Bool("candidx", true, "use the attribute inverted index for predicate candidates (false = O(|V|) scan)")
		minimize  = flag.Bool("minimize", false, "PQ: minimize before evaluating")
	)
	flag.Parse()

	if *mutFile != "" || *subFile != "" {
		if *remote == "" {
			fatal(fmt.Errorf("-mutate and -subscribe need -remote URL (mutation is a serving-layer operation)"))
		}
	}
	if *remote != "" {
		base := strings.TrimRight(*remote, "/")
		var err error
		switch {
		case *mutFile != "":
			err = runMutate(base, *mutFile)
		case *subFile != "":
			err = runSubscribe(base, *subFile)
		default:
			err = runRemote(*remote, *batchPath, *patPath, *from, *to, *expr,
				*priority, *deadline, *dialTries, *dialWait)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	g, err := loadGraph(*graphPath, *demo)
	if err != nil {
		fatal(err)
	}
	banner := os.Stdout
	if *stream {
		banner = os.Stderr // keep stdout pure NDJSON in stream mode
	}
	fmt.Fprintf(banner, "graph: %d nodes, %d edges, colors %v\n", g.NumNodes(), g.NumEdges(), g.Colors())

	opts, err := engineOptions(g, *backend, *useMatrix, *workers, *grailK, *memBudget, *candIdx)
	if err != nil {
		fatal(err)
	}
	e, err := regraph.NewEngine(g, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(banner, "backend: %s\n", e.BackendKind())

	switch {
	case *batchPath != "":
		if err := runBatch(e, *batchPath, *stream); err != nil {
			fatal(err)
		}
	case *expr != "":
		if err := runRQ(e, *from, *to, *expr); err != nil {
			fatal(err)
		}
	case *patPath != "":
		if err := runPQ(e, *patPath, *minimize); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("nothing to do: give -expr (RQ), -pattern (PQ) or -batch (RQ file)"))
	}
}

// engineOptions translates the backend flags into EngineOptions. The
// legacy -matrix bool is honored when -backend is not given: true
// means "matrix", false means "cache".
func engineOptions(g *regraph.Graph, backend string, useMatrix bool, workers, grailK int, memBudget int64, candIdx bool) (regraph.EngineOptions, error) {
	o := regraph.EngineOptions{Workers: workers, DisableCandidateIndex: !candIdx}
	if backend == "" {
		if useMatrix {
			backend = "matrix"
		} else {
			backend = "cache"
		}
	}
	switch backend {
	case "matrix":
		if grailK > 0 {
			return o, fmt.Errorf("-grail needs a searching backend (twohop, cache or auto), not matrix")
		}
		o.BackendKind = "matrix"
	case "twohop":
		o.BackendKind = "twohop"
	case "cache":
		// The engine creates its own cache.
	case "auto":
		o.AutoBackend = true
		o.MemoryBudget = memBudget
	default:
		return o, fmt.Errorf("unknown -backend %q (want matrix, twohop, cache or auto)", backend)
	}
	o.ReachFilterK = grailK
	return o, nil
}

// ---- remote mode -----------------------------------------------------------

// runRemote ships the requested queries to an rgserve (or rgrouter)
// instance as NDJSON request lines (internal/wire) and passes the
// response lines through to stdout as they arrive. The upload is a
// pipe, so the server's admission bound back-pressures request
// production too. A -priority or -deadline flag stamps every request
// line with the QoS fields; the deadline budget starts when the server
// receives the line. A refused initial dial is retried with backoff
// (-dial-retries / -dial-backoff) so a freshly launched server or a
// router mid-restart does not fail the whole batch.
func runRemote(base, batchPath, patPath, from, to, expr string,
	priority int, deadline time.Duration, dialRetries int, dialBackoff time.Duration) error {
	reqs, err := remoteRequests(batchPath, patPath, from, to, expr)
	if err != nil {
		return err
	}
	if priority != 0 || deadline > 0 {
		for i := range reqs {
			reqs[i].Priority = priority
			reqs[i].DeadlineMS = deadline.Milliseconds()
		}
	}
	// Pass lines through verbatim, tallying a stderr summary.
	t0 := time.Now()
	results, errors, pairs := 0, 0, 0
	kinds := map[string]int{}
	err = wire.PostStreamRetry(strings.TrimRight(base, "/")+"/v1/query", reqs,
		func(raw []byte, r *wire.Response) error {
			os.Stdout.Write(raw)
			os.Stdout.Write([]byte{'\n'})
			results++
			pairs += r.Count
			if r.Err != "" {
				errors++
				kinds[errKindLabel(r.ErrKind)]++
			}
			return nil
		}, dialRetries, dialBackoff)
	if err != nil {
		return fmt.Errorf("remote: %w", err)
	}
	fmt.Fprintf(os.Stderr, "remote: %d results (%d errors%s), %d pairs total, %v wall\n",
		results, errors, errKindSummary(kinds), pairs, time.Since(t0).Round(time.Microsecond))
	return nil
}

// runMutate streams a mutation script to the server's /v1/mutate
// endpoint, raw — the server parses the lines (JSON ops and the qlang
// text form interleave freely) and commits them in snapshot-isolated
// generations. Per-op ack lines pass through to stdout; the trailing
// summary goes to stderr so stdout stays machine-readable, mirroring
// -stream.
func runMutate(base, path string) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	applied, failed := 0, 0
	var sum *mutate.Summary
	err := wire.PostLines(base+"/v1/mutate", in, func(line []byte) error {
		var probe struct {
			Kind string `json:"kind"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Kind == mutate.SummaryKind {
			sum = new(mutate.Summary)
			if err := json.Unmarshal(line, sum); err != nil {
				return fmt.Errorf("malformed summary line %q: %w", line, err)
			}
			return nil
		}
		os.Stdout.Write(line)
		os.Stdout.Write([]byte{'\n'})
		var a mutate.Ack
		if json.Unmarshal(line, &a) == nil {
			if a.Err == "" {
				applied++
			} else {
				failed++
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("mutate: %w", err)
	}
	if sum == nil {
		return fmt.Errorf("mutate: stream ended without a summary line")
	}
	fmt.Fprintf(os.Stderr, "mutate: generation %d: %d applied, %d failed; graph now %d nodes, %d edges\n",
		sum.Gen, sum.Applied, sum.Failed, sum.Nodes, sum.Edges)
	if sum.Err != "" {
		return fmt.Errorf("mutate: %s", sum.Err)
	}
	return nil
}

// runSubscribe registers the pattern file as a standing query and
// passes the server's delta stream through to stdout until the server
// ends it (drain, or the subscriber lagging behind the commit stream).
// An abnormal end reason becomes the exit error.
func runSubscribe(base, patPath string) error {
	text, err := os.ReadFile(patPath)
	if err != nil {
		return err
	}
	line, err := json.Marshal(wire.Request{PQ: string(text)})
	if err != nil {
		return err
	}
	deltas := 0
	endErr := ""
	err = wire.PostLines(base+"/v1/subscribe", bytes.NewReader(append(line, '\n')), func(raw []byte) error {
		os.Stdout.Write(raw)
		os.Stdout.Write([]byte{'\n'})
		var d wire.Delta
		if json.Unmarshal(raw, &d) == nil {
			switch d.Kind {
			case wire.DeltaDelta:
				deltas++
			case wire.DeltaEnd:
				endErr = d.Err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	fmt.Fprintf(os.Stderr, "subscribe: stream ended after %d deltas\n", deltas)
	if endErr != "" {
		return fmt.Errorf("subscribe: %s", endErr)
	}
	return nil
}

// errKindLabel maps a response's error_kind to its summary bucket.
// Lines carrying an error but no kind (per-line parse errors and other
// request rejections) count as "invalid".
func errKindLabel(kind string) string {
	if kind == "" {
		return "invalid"
	}
	return kind
}

// errKindSummary renders the per-error_kind breakdown for the stderr
// summary, e.g. ": 2 shed, 1 unavailable" — empty when nothing failed,
// kinds sorted so the line is stable for scripts that scrape it.
func errKindSummary(kinds map[string]int) string {
	if len(kinds) == 0 {
		return ""
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", kinds[k], k)
	}
	return b.String()
}

// remoteRequests builds the wire request lines for remote mode. Query
// text is shipped verbatim — parsing (and per-line parse errors) happen
// server-side, exactly as for any other client.
func remoteRequests(batchPath, patPath, from, to, expr string) ([]wire.Request, error) {
	switch {
	case batchPath != "":
		var reqs []wire.Request
		err := forEachBatchLine(batchPath, func(lineNo int, line string) error {
			from, to, qexpr, err := qlang.SplitRQLine(line)
			if err != nil {
				return fmt.Errorf("batch: line %d: %w", lineNo, err)
			}
			id := uint64(len(reqs))
			reqs = append(reqs, wire.Request{
				ID: &id,
				RQ: &wire.RQSpec{From: from, To: to, Expr: qexpr},
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		return reqs, nil
	case patPath != "":
		text, err := os.ReadFile(patPath)
		if err != nil {
			return nil, err
		}
		id := uint64(0)
		return []wire.Request{{ID: &id, PQ: string(text)}}, nil
	case expr != "":
		id := uint64(0)
		return []wire.Request{{ID: &id, RQ: &wire.RQSpec{From: from, To: to, Expr: expr}}}, nil
	default:
		return nil, fmt.Errorf("-remote needs -batch, -pattern or -expr")
	}
}

// ---- local modes -----------------------------------------------------------

// runBatch parses the batch file and evaluates every query through a
// resident engine — buffered (one answer-count line per query, input
// order) or, with stream, as an NDJSON result stream in completion
// order.
func runBatch(e *regraph.Engine, path string, stream bool) error {
	qs, err := parseBatch(path)
	if err != nil {
		return err
	}
	if stream {
		return streamBatch(e, qs)
	}
	t0 := time.Now()
	results := e.RunRQs(qs)
	elapsed := time.Since(t0)
	total := 0
	for i, pairs := range results {
		fmt.Printf("%4d  %s: %d pairs\n", i, qs[i], len(pairs))
		total += len(pairs)
	}
	fmt.Printf("batch: %d queries, %d pairs total, %v on %d workers\n",
		len(qs), total, elapsed.Round(time.Microsecond), e.Workers())
	return nil
}

// streamBatch submits every query to a session and prints each result
// the moment it completes, as a wire.Response NDJSON line — the same
// schema rgserve speaks. Answers are streamed through per-request Emit
// counters, so no pair slice is ever materialized: resident answer
// memory is bounded by the session's in-flight cap regardless of batch
// size.
func streamBatch(e *regraph.Engine, qs []regraph.RQ) error {
	s := e.Open(context.Background(), regraph.SessionOptions{})
	counts := make([]int64, len(qs)) // one owner at a time: the evaluating worker, then the printer
	go func() {
		for i := range qs {
			i := i
			_, err := s.Submit(context.Background(), regraph.BatchRequest{
				RQ:   &qs[i],
				Emit: func(regraph.Pair) bool { counts[i]++; return true },
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rgquery: submit:", err)
				break
			}
		}
		s.Close()
	}()
	enc := wire.NewEncoder(os.Stdout)
	t0 := time.Now()
	total := 0
	for r := range s.Results() {
		line := wire.FromResult(r, "rq", nil, int(counts[r.ID]))
		line.Query = qs[r.ID].String()
		total += line.Count
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "stream: %d queries, %d pairs total, %v wall, p50 %v p95 %v max in-flight %d\n",
		st.Delivered, total, time.Since(t0).Round(time.Microsecond),
		st.Latency.P50, st.Latency.P95, st.MaxInFlight)
	return nil
}

// parseBatch reads the tab-separated RQ batch format (qlang.ParseRQLine).
func parseBatch(path string) ([]regraph.RQ, error) {
	var qs []regraph.RQ
	err := forEachBatchLine(path, func(lineNo int, line string) error {
		q, err := qlang.ParseRQLine(line)
		if err != nil {
			return fmt.Errorf("batch: line %d: %w", lineNo, err)
		}
		qs = append(qs, q)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return qs, nil
}

// forEachBatchLine scans a -batch file and calls fn for every
// non-blank, non-comment line — the one owner of the file conventions
// (1MiB line bound, '#' comments) for local and remote batch modes.
func forEachBatchLine(path string, fn func(lineNo int, line string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20) // generated predicates can exceed the 64KiB default
	lineNo, queries := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := fn(lineNo, line); err != nil {
			return err
		}
		queries++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if queries == 0 {
		return fmt.Errorf("batch: no queries in %s", path)
	}
	return nil
}

func loadGraph(path string, demo bool) (*regraph.Graph, error) {
	if demo {
		return regraph.Essembly(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph FILE or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadTSV(f)
}

func runRQ(e *regraph.Engine, from, to, expr string) error {
	q, err := qlang.ParseRQ(from, to, expr)
	if err != nil {
		return err
	}
	g := e.Graph()
	pairs := e.RunRQs([]regraph.RQ{q})[0]
	fmt.Printf("%s: %d pairs\n", q, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %s -> %s\n", g.Node(p.From).Name, g.Node(p.To).Name)
	}
	return nil
}

func runPQ(e *regraph.Engine, path string, minimize bool) error {
	q, err := loadPattern(path)
	if err != nil {
		return err
	}
	if minimize {
		before := q.Size()
		q = regraph.Minimize(q)
		fmt.Printf("minimized: size %d -> %d\n", before, q.Size())
	}
	r := e.RunBatch([]regraph.BatchRequest{{PQ: q}})[0]
	if r.Err != nil {
		return r.Err
	}
	if r.Match.Empty() {
		fmt.Println("no matches")
		return nil
	}
	fmt.Print(r.Match.String(e.Graph()))
	return nil
}

func loadPattern(path string) (*regraph.PQ, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qlang.ParsePattern(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgquery:", err)
	os.Exit(1)
}
