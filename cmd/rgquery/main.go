// Command rgquery loads a data graph and evaluates a reachability query
// or a graph pattern query against it.
//
// The graph file uses the TSV format of graph.WriteTSV:
//
//	node <name> [attr=value]...
//	edge <from> <to> <color>
//
// A reachability query is given with -from, -to and -expr:
//
//	rgquery -graph g.tsv -from 'job = biologist' -to 'job = doctor' -expr 'fa{2} fn'
//
// A pattern query is given with -pattern, one line per node or edge:
//
//	node <name> <predicate or *>
//	edge <from> <to> <regex>
//
// With -demo the built-in Fig. 1 Essembly graph is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"regraph"
	"regraph/internal/graph"
	"regraph/internal/qlang"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (TSV)")
		demo      = flag.Bool("demo", false, "use the built-in Fig. 1 Essembly graph")
		from      = flag.String("from", "", "RQ: source predicate")
		to        = flag.String("to", "", "RQ: destination predicate")
		expr      = flag.String("expr", "", "RQ: path regular expression (subclass F)")
		patPath   = flag.String("pattern", "", "PQ: pattern file")
		useMatrix = flag.Bool("matrix", true, "precompute the distance matrix")
		minimize  = flag.Bool("minimize", false, "PQ: minimize before evaluating")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *demo)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, colors %v\n", g.NumNodes(), g.NumEdges(), g.Colors())

	var mx *regraph.Matrix
	if *useMatrix {
		mx = regraph.NewMatrix(g)
	}
	switch {
	case *expr != "":
		if err := runRQ(g, mx, *from, *to, *expr); err != nil {
			fatal(err)
		}
	case *patPath != "":
		if err := runPQ(g, mx, *patPath, *minimize); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("nothing to do: give -expr (RQ) or -pattern (PQ)"))
	}
}

func loadGraph(path string, demo bool) (*regraph.Graph, error) {
	if demo {
		return regraph.Essembly(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph FILE or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadTSV(f)
}

func runRQ(g *regraph.Graph, mx *regraph.Matrix, from, to, expr string) error {
	fp, err := regraph.ParsePredicate(from)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	tp, err := regraph.ParsePredicate(to)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	re, err := regraph.ParseRegex(expr)
	if err != nil {
		return fmt.Errorf("-expr: %w", err)
	}
	q := regraph.RQ{From: fp, To: tp, Expr: re}
	var pairs []regraph.Pair
	if mx != nil {
		pairs = q.EvalMatrix(g, mx)
	} else {
		pairs = q.EvalBiBFS(g, regraph.NewCache(g, 1<<16))
	}
	fmt.Printf("%s: %d pairs\n", q, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %s -> %s\n", g.Node(p.From).Name, g.Node(p.To).Name)
	}
	return nil
}

func runPQ(g *regraph.Graph, mx *regraph.Matrix, path string, minimize bool) error {
	q, err := loadPattern(path)
	if err != nil {
		return err
	}
	if minimize {
		before := q.Size()
		q = regraph.Minimize(q)
		fmt.Printf("minimized: size %d -> %d\n", before, q.Size())
	}
	res := regraph.JoinMatch(g, q, regraph.EvalOptions{Matrix: mx})
	if res.Empty() {
		fmt.Println("no matches")
		return nil
	}
	fmt.Print(res.String(g))
	return nil
}

func loadPattern(path string) (*regraph.PQ, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qlang.ParsePattern(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgquery:", err)
	os.Exit(1)
}
