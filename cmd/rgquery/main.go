// Command rgquery loads a data graph and evaluates a reachability query
// or a graph pattern query against it.
//
// The graph file uses the TSV format of graph.WriteTSV:
//
//	node <name> [attr=value]...
//	edge <from> <to> <color>
//
// A reachability query is given with -from, -to and -expr:
//
//	rgquery -graph g.tsv -from 'job = biologist' -to 'job = doctor' -expr 'fa{2} fn'
//
// A pattern query is given with -pattern, one line per node or edge:
//
//	node <name> <predicate or *>
//	edge <from> <to> <regex>
//
// A batch of reachability queries is given with -batch, one query per
// tab-separated line (use * for an always-true predicate; # starts a
// comment), evaluated concurrently across -workers workers:
//
//	<from predicate> <TAB> <to predicate> <TAB> <expr>
//
// With -demo the built-in Fig. 1 Essembly graph is used.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regraph"
	"regraph/internal/graph"
	"regraph/internal/qlang"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (TSV)")
		demo      = flag.Bool("demo", false, "use the built-in Fig. 1 Essembly graph")
		from      = flag.String("from", "", "RQ: source predicate")
		to        = flag.String("to", "", "RQ: destination predicate")
		expr      = flag.String("expr", "", "RQ: path regular expression (subclass F)")
		patPath   = flag.String("pattern", "", "PQ: pattern file")
		batchPath = flag.String("batch", "", "batch of RQs, one per tab-separated line")
		workers   = flag.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
		useMatrix = flag.Bool("matrix", true, "precompute the distance matrix")
		candIdx   = flag.Bool("candidx", true, "use the attribute inverted index for predicate candidates (false = O(|V|) scan)")
		minimize  = flag.Bool("minimize", false, "PQ: minimize before evaluating")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *demo)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, colors %v\n", g.NumNodes(), g.NumEdges(), g.Colors())

	var mx *regraph.Matrix
	if *useMatrix {
		mx = regraph.NewMatrix(g)
	}
	// Single-query modes share one inverted index (nil keeps the linear
	// scan); batch mode doesn't build it here — the engine constructs
	// and owns its own memoized index.
	cands := func() regraph.CandidateSource {
		if *candIdx {
			return regraph.NewCandidateIndex(g)
		}
		return nil
	}
	switch {
	case *batchPath != "":
		if err := runBatch(g, mx, *batchPath, *workers, *candIdx); err != nil {
			fatal(err)
		}
	case *expr != "":
		if err := runRQ(g, mx, cands(), *from, *to, *expr); err != nil {
			fatal(err)
		}
	case *patPath != "":
		if err := runPQ(g, mx, cands(), *patPath, *minimize); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("nothing to do: give -expr (RQ), -pattern (PQ) or -batch (RQ file)"))
	}
}

// runBatch parses the batch file and evaluates every query through a
// resident engine, printing one answer-count line per query.
func runBatch(g *regraph.Graph, mx *regraph.Matrix, path string, workers int, candIdx bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var qs []regraph.RQ
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20) // generated predicates can exceed the 64KiB default
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return fmt.Errorf("batch: line %d: want 3 tab-separated fields, got %d", lineNo, len(fields))
		}
		fp, err := regraph.ParsePredicate(fields[0])
		if err != nil {
			return fmt.Errorf("batch: line %d: from: %w", lineNo, err)
		}
		tp, err := regraph.ParsePredicate(fields[1])
		if err != nil {
			return fmt.Errorf("batch: line %d: to: %w", lineNo, err)
		}
		re, err := regraph.ParseRegex(fields[2])
		if err != nil {
			return fmt.Errorf("batch: line %d: expr: %w", lineNo, err)
		}
		qs = append(qs, regraph.RQ{From: fp, To: tp, Expr: re})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(qs) == 0 {
		return fmt.Errorf("batch: no queries in %s", path)
	}
	e := regraph.NewEngine(g, regraph.EngineOptions{
		Workers: workers, Matrix: mx, DisableCandidateIndex: !candIdx,
	})
	t0 := time.Now()
	results := e.RunRQs(qs)
	elapsed := time.Since(t0)
	total := 0
	for i, pairs := range results {
		fmt.Printf("%4d  %s: %d pairs\n", i, qs[i], len(pairs))
		total += len(pairs)
	}
	fmt.Printf("batch: %d queries, %d pairs total, %v on %d workers\n",
		len(qs), total, elapsed.Round(time.Microsecond), e.Workers())
	return nil
}

func loadGraph(path string, demo bool) (*regraph.Graph, error) {
	if demo {
		return regraph.Essembly(), nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph FILE or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadTSV(f)
}

func runRQ(g *regraph.Graph, mx *regraph.Matrix, cands regraph.CandidateSource, from, to, expr string) error {
	fp, err := regraph.ParsePredicate(from)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	tp, err := regraph.ParsePredicate(to)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	re, err := regraph.ParseRegex(expr)
	if err != nil {
		return fmt.Errorf("-expr: %w", err)
	}
	q := regraph.RQ{From: fp, To: tp, Expr: re}
	var pairs []regraph.Pair
	if mx != nil {
		pairs = q.EvalMatrixWith(g, mx, cands)
	} else {
		pairs = q.EvalBiBFSScratchWith(g, regraph.NewCache(g, 1<<16), regraph.NewScratch(), cands)
	}
	fmt.Printf("%s: %d pairs\n", q, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %s -> %s\n", g.Node(p.From).Name, g.Node(p.To).Name)
	}
	return nil
}

func runPQ(g *regraph.Graph, mx *regraph.Matrix, cands regraph.CandidateSource, path string, minimize bool) error {
	q, err := loadPattern(path)
	if err != nil {
		return err
	}
	if minimize {
		before := q.Size()
		q = regraph.Minimize(q)
		fmt.Printf("minimized: size %d -> %d\n", before, q.Size())
	}
	res := regraph.JoinMatch(g, q, regraph.EvalOptions{Matrix: mx, Cands: cands})
	if res.Empty() {
		fmt.Println("no matches")
		return nil
	}
	fmt.Print(res.String(g))
	return nil
}

func loadPattern(path string) (*regraph.PQ, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qlang.ParsePattern(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgquery:", err)
	os.Exit(1)
}
