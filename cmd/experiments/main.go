// Command experiments regenerates the tables and figures of the paper's
// experimental study (Section 6). With no arguments it runs every
// experiment; otherwise each argument names one driver (see -list).
//
// Usage:
//
//	experiments [-scale f] [-queries n] [-seed s] [-list] [name ...]
//
// Scale 1.0 reproduces the paper's dataset sizes (slow on one core); the
// default 0.25 preserves every curve's shape in a fraction of the time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"regraph/internal/bench"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0, "dataset scale factor (0 = default/env)")
		queries = flag.Int("queries", 0, "queries per sweep point (0 = default/env)")
		seed    = flag.Int64("seed", 1, "generator seed")
		list    = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.YouTubeScale = *scale
		cfg.SyntheticScale = *scale
	}
	if *queries > 0 {
		cfg.QueriesPerPoint = *queries
	}
	env := bench.NewEnv(cfg)

	selected := flag.Args()
	drivers := bench.All()
	if len(selected) > 0 {
		byName := map[string]bench.NamedDriver{}
		for _, d := range drivers {
			byName[d.Name] = d
		}
		drivers = drivers[:0]
		for _, name := range selected {
			d, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			drivers = append(drivers, d)
		}
	}
	fmt.Printf("# regraph experiments  seed=%d  youtube-scale=%.2f  synthetic-scale=%.2f  queries/point=%d\n\n",
		cfg.Seed, cfg.YouTubeScale, cfg.SyntheticScale, cfg.QueriesPerPoint)
	for _, d := range drivers {
		t0 := time.Now()
		tab := d.Run(env)
		fmt.Println(tab.Format())
		fmt.Printf("  (%s finished in %v)\n\n", d.Name, time.Since(t0).Round(time.Millisecond))
	}
}
