// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result line:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_rq.json
//
// Each object carries the benchmark name (with the -N GOMAXPROCS suffix
// stripped into its own field), the iteration count, and every reported
// metric keyed by its unit (ns/op, B/op, allocs/op, and any custom
// ReportMetric units). CI uploads the result as the BENCH_*.json perf
// trajectory artifact, so successive runs can be diffed mechanically.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine recognizes lines of the form
//
//	BenchmarkName-8  100  12345 ns/op  678 B/op  9 allocs/op
//
// and returns ok=false for everything else (headers, PASS/ok trailers).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iters = iters
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
